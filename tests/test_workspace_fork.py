"""Tests for workspace snapshots, fork semantics, and record-level diff.

These pin the PR's satellite contract: fork-then-diverge isolation,
undo/redo across a snapshot watermark, forking a workspace that has
pending validation issues, and ``schema_diff`` agreeing with the
structural ``diff_schemas`` on the changed set.
"""

import pytest

from repro.analysis.diff import diff_schemas, schema_diff
from repro.model.fingerprint import schema_fingerprint, schemas_equal
from repro.model.types import scalar
from repro.ops.attribute_ops import AddAttribute, DeleteAttribute
from repro.ops.type_ops import AddTypeDefinition, DeleteTypeDefinition
from repro.ops.type_property_ops import AddSupertype
from repro.repository.workspace import Workspace


@pytest.fixture
def workspace(small):
    return Workspace(small, name="small_custom")


class TestSnapshot:
    def test_snapshot_is_a_watermark(self, workspace):
        snap = workspace.snapshot()
        assert snap.seq == workspace.schema.log.seq
        assert snap.depth == 0
        workspace.apply(AddAttribute("Person", scalar("date"), "dob"))
        later = workspace.snapshot()
        assert later.depth == 1
        assert later.seq > snap.seq

    def test_undo_to_rewinds_and_feeds_redo(self, workspace):
        before = schema_fingerprint(workspace.schema)
        snap = workspace.snapshot()
        workspace.apply(AddAttribute("Person", scalar("date"), "dob"))
        workspace.apply(AddSupertype("Department", "Person"))
        unwound = workspace.undo_to(snap)
        assert unwound == 2
        assert schema_fingerprint(workspace.schema) == before
        # The unwound steps sit on the redo stack: same history.
        assert workspace.redo_depth == 2
        workspace.redo()
        workspace.redo()
        assert "dob" in workspace.schema.get("Person").attributes
        assert "Person" in workspace.schema.get("Department").supertypes

    def test_undo_to_noop_at_watermark(self, workspace):
        workspace.apply(AddAttribute("Person", scalar("date"), "dob"))
        snap = workspace.snapshot()
        assert workspace.undo_to(snap) == 0

    def test_snapshot_rejected_after_reset(self, workspace):
        snap = workspace.snapshot()
        workspace.reset()
        with pytest.raises(ValueError):
            workspace.undo_to(snap)

    def test_snapshot_ahead_of_history_rejected(self, workspace):
        workspace.apply(AddAttribute("Person", scalar("date"), "dob"))
        snap = workspace.snapshot()
        workspace.undo_last()
        with pytest.raises(ValueError):
            workspace.undo_to(snap)

    def test_foreign_snapshot_rejected(self, workspace, small):
        other = Workspace(small, name="other")
        with pytest.raises(ValueError):
            workspace.undo_to(other.snapshot())


class TestFork:
    def test_fork_then_diverge_isolation(self, workspace):
        workspace.apply(AddAttribute("Person", scalar("date"), "dob"))
        branch = workspace.fork("branch")
        assert schemas_equal(branch.schema, workspace.schema)
        branch.apply(AddAttribute("Person", scalar("string"), "email"))
        workspace.apply(DeleteAttribute("Person", "dob"))
        assert "email" not in workspace.schema.get("Person").attributes
        assert "dob" in branch.schema.get("Person").attributes
        assert workspace.reference is branch.reference

    def test_fork_starts_with_empty_history(self, workspace):
        workspace.apply(AddAttribute("Person", scalar("date"), "dob"))
        branch = workspace.fork()
        assert branch.undo_depth == 0
        assert branch.redo_depth == 0
        assert branch.undo_last() is None

    def test_fork_with_pending_validation_issues(self, workspace):
        workspace.apply(AddSupertype("Employee", "Department"))
        # The hierarchy now has two roots -> a warning is pending.
        assert workspace.issues
        branch = workspace.fork("branch")
        assert branch.issues == workspace.issues
        # The fork revalidates independently: rooting the hierarchy in
        # the branch clears its warning but not the origin's.
        branch.apply(AddSupertype("Department", "Person"))
        assert branch.issues != workspace.issues
        assert workspace.issues

    def test_fork_at_snapshot_replays_prefix(self, workspace):
        workspace.apply(AddAttribute("Person", scalar("date"), "dob"))
        snap = workspace.snapshot()
        workspace.apply(AddSupertype("Department", "Person"))
        branch = workspace.fork("branch", at=snap)
        assert "dob" in branch.schema.get("Person").attributes
        assert "Person" not in branch.schema.get("Department").supertypes
        # The replayed prefix is live history: it can be undone.
        assert branch.undo_depth == 1
        branch.undo_last()
        assert "dob" not in branch.schema.get("Person").attributes
        # The origin workspace is untouched by the branch replay.
        assert "Person" in workspace.schema.get("Department").supertypes

    def test_fork_lineage_supports_record_diff(self, workspace):
        branch = workspace.fork("branch")
        branch.apply(AddAttribute("Person", scalar("date"), "dob"))
        diff = schema_diff(workspace.schema, branch.schema)
        assert _changed_keys(diff) == {
            ("type", "Person", "modified"),
            ("attribute", "Person.dob", "added"),
        }


def _changed_keys(diff):
    return {
        (entry.category, entry.path, entry.status.value)
        for entry in diff.changed()
    }


class TestSchemaDiff:
    def changed_sets_match(self, original, custom):
        fast = schema_diff(original, custom)
        slow = diff_schemas(original, custom)
        assert _changed_keys(fast) == _changed_keys(slow)
        return fast

    def test_matches_structural_diff_after_divergence(self, workspace):
        branch = workspace.fork("branch")
        branch.apply(AddAttribute("Person", scalar("date"), "dob"))
        branch.apply(DeleteAttribute("Department", "code"))
        workspace.apply(AddSupertype("Department", "Person"))
        self.changed_sets_match(workspace.schema, branch.schema)

    def test_membership_changes(self, workspace):
        branch = workspace.fork("branch")
        branch.apply(AddTypeDefinition("Project"))
        branch.apply(DeleteTypeDefinition("Employee"))
        diff = self.changed_sets_match(workspace.schema, branch.schema)
        keys = _changed_keys(diff)
        assert ("type", "Project", "added") in keys
        assert ("type", "Employee", "deleted") in keys

    def test_identical_forks_diff_empty(self, workspace):
        branch = workspace.fork("branch")
        diff = self.changed_sets_match(workspace.schema, branch.schema)
        assert diff.is_empty()

    def test_unrelated_schemas_fall_back(self, small, company):
        fast = schema_diff(small, company)
        slow = diff_schemas(small, company)
        assert _changed_keys(fast) == _changed_keys(slow)

    def test_lossy_divergence_falls_back(self, workspace):
        branch = workspace.fork("branch")
        branch.apply(AddAttribute("Person", scalar("date"), "dob"))
        branch.schema.touch()
        fast = schema_diff(workspace.schema, branch.schema)
        slow = diff_schemas(workspace.schema, branch.schema)
        assert _changed_keys(fast) == _changed_keys(slow)
        assert {e.path for e in fast.changed()} == {"Person", "Person.dob"}


class TestForkAtRewindFallback:
    """``fork(at=...)`` on a lossy log: warn, rewind-and-clone, restore."""

    def _diverge_with_out_of_band_edit(self, workspace):
        from repro.model.attributes import Attribute

        workspace.apply(AddAttribute("Person", scalar("date"), "dob"))
        snap = workspace.snapshot()
        workspace.apply(AddSupertype("Department", "Person"))
        # Out-of-band edit: a raw mutator call with no operation behind
        # it, then touch() -- the mutation log is now lossy, so the
        # branch-by-replay path cannot trust it.
        workspace.schema.get("Person").add_attribute(
            Attribute("oob", scalar("long"))
        )
        workspace.schema.touch()
        assert workspace.schema.log.lossy
        return snap

    def test_lossy_log_warns_and_falls_back(self, workspace):
        snap = self._diverge_with_out_of_band_edit(workspace)
        with pytest.warns(RuntimeWarning, match="rewind-and-clone"):
            branch = workspace.fork("branch", at=snap)
        # Pre-snapshot state is present, post-snapshot state is not.
        assert "dob" in branch.schema.get("Person").attributes
        assert "Person" not in branch.schema.get("Department").supertypes
        # Out-of-band edits are not position-tracked: they survive.
        assert "oob" in branch.schema.get("Person").attributes
        # The fallback branch starts with an empty undo history.
        assert branch.undo_depth == 0

    def test_fallback_branch_state_matches_rewound_original(self, workspace):
        snap = self._diverge_with_out_of_band_edit(workspace)
        with pytest.warns(RuntimeWarning):
            branch = workspace.fork("branch", at=snap)
        unwound = workspace.undo_to(snap)
        assert schema_fingerprint(branch.schema) == schema_fingerprint(
            workspace.schema
        )
        for _ in range(unwound):
            workspace.redo()

    def test_original_workspace_fully_restored(self, workspace):
        snap = self._diverge_with_out_of_band_edit(workspace)
        with pytest.warns(RuntimeWarning):
            branch = workspace.fork("branch", at=snap)
        assert workspace.undo_depth == 2
        assert workspace.redo_depth == 0
        assert "Person" in workspace.schema.get("Department").supertypes
        # Branch and original diverge independently afterwards.
        branch.apply(AddAttribute("Person", scalar("string"), "email"))
        assert "email" not in workspace.schema.get("Person").attributes

    def test_fallback_branch_still_diffs_against_original(self, workspace):
        snap = self._diverge_with_out_of_band_edit(workspace)
        with pytest.warns(RuntimeWarning):
            branch = workspace.fork("branch", at=snap)
        fast = schema_diff(workspace.schema, branch.schema)
        slow = diff_schemas(workspace.schema, branch.schema)
        assert _changed_keys(fast) == _changed_keys(slow)

    def test_replay_path_does_not_warn_on_clean_log(self, workspace):
        import warnings

        workspace.apply(AddAttribute("Person", scalar("date"), "dob"))
        snap = workspace.snapshot()
        workspace.apply(AddSupertype("Department", "Person"))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            branch = workspace.fork("branch", at=snap)
        # The replay path keeps live history on the branch.
        assert branch.undo_depth == 1


class TestForkRewindUnderPopulations:
    """PR 7 satellite: the rewind-fallback branch judges populations
    exactly as the rewound original does -- admission verdicts are a
    behavioral fingerprint the lossy-log fallback must preserve.
    """

    def _lossy_snapshot(self, workspace):
        from repro.model.attributes import Attribute

        workspace.apply(AddAttribute("Person", scalar("date"), "dob"))
        snap = workspace.snapshot()
        workspace.apply(AddSupertype("Department", "Person"))
        workspace.schema.get("Person").add_attribute(
            Attribute("oob", scalar("long"))
        )
        workspace.schema.touch()
        assert workspace.schema.log.lossy
        return snap

    def test_branch_admits_the_generated_population(self, workspace):
        from repro.instances import check_population
        from repro.workload.population import generate_population

        snap = self._lossy_snapshot(workspace)
        with pytest.warns(RuntimeWarning):
            branch = workspace.fork("branch", at=snap)
        pop = generate_population(branch.schema, seed=11)
        assert len(pop) > 0
        assert check_population(branch.schema, pop) == []

    def test_branch_and_rewound_original_agree_on_admission(self, workspace):
        from repro.instances import Population, check_population

        snap = self._lossy_snapshot(workspace)
        with pytest.warns(RuntimeWarning):
            branch = workspace.fork("branch", at=snap)
        # A witness exercising the snapshot-time schema: Person has a
        # key on id, Department.staff is set<Employee> order_by (name).
        pop = Population("witness")
        pop.add("d1", "Department", code="d1")
        pop.add("e1", "Employee", id=1, name="ann")
        pop.wire(branch.schema, "e1", "works_in", "d1")
        # And a near-miss: duplicate key values.
        bad = pop.copy("near_miss")
        bad.add("p1", "Person", id=1)
        bad.add("p2", "Person", id=1)
        unwound = workspace.undo_to(snap)
        try:
            for candidate in (pop, bad):
                branch_issues = [
                    str(issue)
                    for issue in check_population(branch.schema, candidate)
                ]
                original_issues = [
                    str(issue)
                    for issue in check_population(
                        workspace.schema, candidate
                    )
                ]
                assert branch_issues == original_issues
        finally:
            for _ in range(unwound):
                workspace.redo()
        assert check_population(branch.schema, pop) == []
        assert any(
            issue.kind == "key"
            for issue in check_population(branch.schema, bad)
        )

    def test_post_snapshot_constraints_do_not_leak_into_branch(
        self, workspace
    ):
        from repro.instances import Population, check_population
        from repro.ops.language import parse_operation

        workspace.apply(AddAttribute("Person", scalar("date"), "dob"))
        snap = workspace.snapshot()
        # Post-snapshot: tighten Department.staff to a to-one end (the
        # order_by list must go first; to-one ends are unordered).
        workspace.apply(parse_operation(
            "modify_relationship_order_by(Department, staff, (name), ())"
        ))
        workspace.apply(parse_operation(
            "modify_relationship_cardinality"
            "(Department, staff, set<Employee>, Employee)"
        ))
        workspace.schema.get("Person").attributes.pop("dob")
        workspace.schema.touch()
        assert workspace.schema.log.lossy
        with pytest.warns(RuntimeWarning):
            branch = workspace.fork("branch", at=snap)
        pop = Population("two_staff")
        pop.add("d1", "Department", code="d1")
        pop.add("e1", "Employee", id=1, name="ann")
        pop.add("e2", "Employee", id=2, name="bob")
        pop.wire(branch.schema, "e1", "works_in", "d1")
        pop.wire(branch.schema, "e2", "works_in", "d1")
        # The branch still has the set-valued end: two staff are fine.
        assert check_population(branch.schema, pop) == []
        # The live workspace kept the tightened end: same data rejected.
        assert any(
            issue.kind == "cardinality"
            for issue in check_population(workspace.schema, pop)
        )
