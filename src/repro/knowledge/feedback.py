"""Designer feedback messages.

"The feedback consists of error or informational messages about the
requested operations" (Section 3) and the knowledge component adds
"cautionary statements to the user in the form of feedback" (Section 5,
activity 9).  Four levels, in decreasing severity:

* ``error`` -- the operation was rejected;
* ``caution`` -- the operation is legal but has consequences the
  designer should weigh (the paper's cautionary statements);
* ``warning`` -- a schema-level design smell;
* ``info`` -- neutral information (e.g. cascaded changes performed).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class FeedbackLevel(enum.Enum):
    """Severity of one feedback message."""

    ERROR = "error"
    CAUTION = "caution"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True, slots=True)
class Feedback:
    """One message shown to the designer.

    ``code`` is a stable machine identifier; ``subject`` names the
    construct or operation the message concerns.
    """

    level: FeedbackLevel
    code: str
    subject: str
    message: str

    def __str__(self) -> str:
        return f"[{self.level.value}] {self.code} ({self.subject}): {self.message}"


def error(code: str, subject: str, message: str) -> Feedback:
    """Build an error-level message."""
    return Feedback(FeedbackLevel.ERROR, code, subject, message)


def caution(code: str, subject: str, message: str) -> Feedback:
    """Build a cautionary statement."""
    return Feedback(FeedbackLevel.CAUTION, code, subject, message)


def warning(code: str, subject: str, message: str) -> Feedback:
    """Build a warning-level message."""
    return Feedback(FeedbackLevel.WARNING, code, subject, message)


def info(code: str, subject: str, message: str) -> Feedback:
    """Build an informational message."""
    return Feedback(FeedbackLevel.INFO, code, subject, message)


@dataclass
class FeedbackLog:
    """An accumulating, filterable log of feedback messages."""

    messages: list[Feedback] = field(default_factory=list)

    def add(self, message: Feedback) -> None:
        """Append one message."""
        self.messages.append(message)

    def extend(self, messages: list[Feedback]) -> None:
        """Append several messages."""
        self.messages.extend(messages)

    def at_level(self, level: FeedbackLevel) -> list[Feedback]:
        """Messages of one severity, oldest first."""
        return [m for m in self.messages if m.level is level]

    def has_errors(self) -> bool:
        """True when any error-level message was logged."""
        return any(m.level is FeedbackLevel.ERROR for m in self.messages)

    def __len__(self) -> int:
        return len(self.messages)

    def __iter__(self):
        return iter(self.messages)

    def render(self) -> str:
        """Multi-line rendering, oldest first."""
        return "\n".join(str(m) for m in self.messages)
