"""Reference-spec independence: slow paths never query fast paths.

Every differential invariant in this repo checks a fast path against a
slow reference specification: ``scan_*`` full scans vs
:class:`SchemaIndex`, ``validate_schema`` vs :class:`ValidationCache`,
``DictAdjacency`` vs ``ColumnarAdjacency``, ``Schema.copy`` (eager) vs
``Schema.fork`` (CoW).  Those invariants are evidence only while the
reference side is *independent*: a spec that transitively answers from
the cache it is supposed to verify would agree with it by construction,
and the whole verification tower becomes circular.

This pass takes the transitive call closure of every spec root and
flags, anywhere in it:

* attribute **loads** of ``index`` / ``_index`` / ``validation`` /
  ``_validation`` (the cache access channels on ``Schema``), and
* name **loads** of ``SchemaIndex`` / ``ValidationCache`` /
  ``ColumnarAdjacency`` (direct fast-path references).

Class instantiations are not descended: ``Schema(...)`` *constructing*
its caches in ``__post_init__`` is wiring, not querying -- the contract
bans the spec from reading answers out of a cache, not from building an
object that happens to own one.
"""

from __future__ import annotations

import ast

from repro.lint.callgraph import CallGraph, FuncRef
from repro.lint.findings import Finding
from repro.lint.registry import LintContext, register_pass

#: attribute loads that reach a cache from a Schema
FAST_PATH_ATTRS = frozenset({"index", "_index", "validation", "_validation"})

#: direct references to fast-path classes
FAST_PATH_CLASSES = frozenset(
    {"SchemaIndex", "ValidationCache", "ColumnarAdjacency"}
)

#: the spec roots: (module, class | None, function-name predicate)
INDEX_MODULE = "repro.model.index"
VALIDATION_MODULE = "repro.model.validation"
SCHEMA_MODULE = "repro.model.schema"
COLUMNAR_MODULE = "repro.model.columnar"


def spec_roots(graph: CallGraph) -> list[FuncRef]:
    """Every reference-spec entry point the contract names."""
    roots: list[FuncRef] = []
    codebase = graph.codebase
    index_info = codebase.module(INDEX_MODULE)
    if index_info is not None:
        for name in sorted(index_info.functions):
            if name.startswith("scan_"):
                ref = graph.function(INDEX_MODULE, name)
                if ref is not None:
                    roots.append(ref)
    validation_info = codebase.module(VALIDATION_MODULE)
    if validation_info is not None:
        for name in sorted(validation_info.functions):
            ref = graph.function(VALIDATION_MODULE, name)
            if ref is not None:
                roots.append(ref)
    copy_ref = graph.method(SCHEMA_MODULE, "Schema", "copy")
    if copy_ref is not None:
        roots.append(copy_ref)
    if codebase.class_in(COLUMNAR_MODULE, "DictAdjacency") is not None:
        roots.extend(graph.methods_of(COLUMNAR_MODULE, "DictAdjacency"))
    return roots


def independence_findings(
    graph: CallGraph, roots: list[FuncRef]
) -> list[Finding]:
    """Fast-path touches anywhere in the closure of *roots*."""
    findings: list[Finding] = []
    closure = graph.closure(roots)
    root_keys = {ref.key for ref in roots}
    reported: set[tuple[str, str, str]] = set()
    for key in sorted(closure):
        ref = closure[key]
        info = graph.codebase.module(ref.module)
        path = info.path if info is not None else ref.module
        in_spec = "spec root" if ref.key in root_keys else "reachable from a spec root"
        # method-call heads are not cache reads: ``stack.index(x)`` is a
        # list method, not an access of the ``Schema.index`` property
        call_heads = {
            id(child.func)
            for child in ast.walk(ref.node)
            if isinstance(child, ast.Call)
        }
        for node in ast.walk(ref.node):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and id(node) not in call_heads
                and node.attr in FAST_PATH_ATTRS
            ):
                anchor = (ref.module, ref.qualname, node.attr)
                if anchor in reported:
                    continue
                reported.add(anchor)
                findings.append(
                    Finding(
                        rule="ref-independence",
                        path=path,
                        line=node.lineno,
                        symbol=f"{ref.module}:{ref.qualname}",
                        message=(
                            f"({in_spec}) reads .{node.attr}, answering from "
                            "a cache the reference specification is supposed "
                            "to verify; the differential invariant becomes "
                            "circular"
                        ),
                    )
                )
            elif (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in FAST_PATH_CLASSES
            ):
                anchor = (ref.module, ref.qualname, node.id)
                if anchor in reported:
                    continue
                reported.add(anchor)
                findings.append(
                    Finding(
                        rule="ref-independence",
                        path=path,
                        line=node.lineno,
                        symbol=f"{ref.module}:{ref.qualname}",
                        message=(
                            f"({in_spec}) references fast-path class "
                            f"{node.id}; reference specifications must stay "
                            "independent of the caches they verify"
                        ),
                    )
                )
    return findings


@register_pass(
    "independence",
    rules=("ref-independence",),
    contract=(
        "scan_*, validate_schema, Schema.copy, and DictAdjacency never "
        "transitively query SchemaIndex / ValidationCache / "
        "ColumnarAdjacency (differential invariants stay non-circular)"
    ),
)
def run(context: LintContext) -> list[Finding]:
    graph = CallGraph(
        context.codebase,
        method_universe=("Schema", "InterfaceDef", "DictAdjacency"),
    )
    roots = spec_roots(graph)
    findings = independence_findings(graph, roots)
    if not roots:
        findings.append(
            Finding(
                rule="ref-independence",
                path=str(context.src_root),
                line=1,
                symbol="repro.lint.passes.independence",
                message="no reference-spec roots found; the pass is vacuous",
            )
        )
    return findings
