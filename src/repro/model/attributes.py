"""Attributes of interface definitions.

An attribute is a named, typed instance property.  The paper's operation
language exposes an attribute's *type*, optional *size* (for sized scalars),
and *name* as candidates for modification (Table 2/3); the name itself is
never modifiable (name equivalence).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.model.errors import InvalidModelError
from repro.model.types import ScalarType, TypeRef, is_type_ref


@dataclass(frozen=True, slots=True)
class Attribute:
    """A named instance property with a domain type.

    ``size`` is surfaced separately from the type because the modification
    language has a dedicated ``modify_attribute_size`` operation; it is
    stored inside the :class:`~repro.model.types.ScalarType` when present.
    """

    name: str
    type: TypeRef

    def __post_init__(self) -> None:
        if not self.name or not (self.name[0].isalpha() or self.name[0] == "_"):
            raise InvalidModelError(f"invalid attribute name {self.name!r}")
        if not is_type_ref(self.type):
            raise InvalidModelError(
                f"attribute {self.name!r} has a non-type domain: {self.type!r}"
            )
        if isinstance(self.type, ScalarType) and self.type.name == "void":
            raise InvalidModelError(
                f"attribute {self.name!r} cannot have type void"
            )

    @property
    def size(self) -> int | None:
        """The size of a sized scalar attribute, or ``None``."""
        if isinstance(self.type, ScalarType):
            return self.type.size
        return None

    def with_type(self, new_type: TypeRef) -> "Attribute":
        """Return a copy of this attribute with a different domain type."""
        return replace(self, type=new_type)

    def with_size(self, new_size: int | None) -> "Attribute":
        """Return a copy with the scalar size changed.

        Raises :class:`~repro.model.errors.InvalidModelError` when the
        attribute's type is not a sized scalar.
        """
        if not isinstance(self.type, ScalarType):
            raise InvalidModelError(
                f"attribute {self.name!r} is not scalar; it has no size"
            )
        return replace(self, type=ScalarType(self.type.name, new_size))

    def __str__(self) -> str:
        return f"attribute {self.type} {self.name}"
