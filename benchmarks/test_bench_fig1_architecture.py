"""Figure 1: the full system architecture walked end to end.

One pass through every processing step of the figure: load the shrink
wrap schema -> generate concept schemas -> apply modifications in the
workspace (with knowledge-component feedback) -> generate the custom
schema -> generate the mapping -> produce the consistency report.
"""

from repro.catalog import FIGURE7_ELABORATION_SCRIPT, university_schema
from repro.ops.language import parse_script
from repro.repository.repository import SchemaRepository


def full_pipeline():
    repository = SchemaRepository(university_schema(), custom_name="pipeline")
    for operation in parse_script(FIGURE7_ELABORATION_SCRIPT):
        repository.apply(operation, concept_id="ww:Course_Offering")
    repository.apply(
        parse_script("delete_attribute(Course_Offering, room)")[0],
        concept_id="ww:Course_Offering",
    )
    custom = repository.generate_custom_schema()
    mapping = repository.generate_mapping()
    consistency = repository.consistency()
    return repository, custom, mapping, consistency


def test_bench_fig1_architecture(benchmark, report):
    repository, custom, mapping, consistency = benchmark(full_pipeline)

    lines = [
        "Figure 1 pipeline walk:",
        f"  shrink wrap schema:  {repository.shrink_wrap.name} "
        f"({len(repository.shrink_wrap)} interfaces)",
        f"  concept schemas:     {len(repository.concept_schemas())}",
        f"  workspace steps:     {len(repository.workspace.log)} requested, "
        f"{len(repository.workspace.applied_operations())} applied",
        f"  custom schema:       {custom.name} ({len(custom)} interfaces)",
        f"  mapping:             {len(mapping.entries)} entries, "
        f"reuse ratio {mapping.reuse_ratio():.2f}",
        f"  consistency report:  {len(consistency)} message(s)",
    ]
    report("fig1_architecture_pipeline", "\n".join(lines))

    assert "Schedule" in custom
    assert mapping.lookup("Course_Offering.room") is not None
    assert not any(m.level.value == "error" for m in consistency)
