"""Table 3: modify-operation coverage of ODL candidates.

Names are never modifiable ("in accordance with our assumptions of
uniqueness and equivalence of names"); every other candidate is covered
by a dedicated modify operation.
"""

from repro.analysis.completeness import (
    coverage_gaps,
    format_table,
    table3_rows,
)

NAME_SUB_CANDIDATES = ("Type name", "Traversal path name", "Inverse path name")


def test_bench_table3(benchmark, report):
    rows = benchmark(table3_rows)
    report(
        "table3_modify_coverage",
        format_table(rows, "Table 3: modify operations on ODL candidates"),
    )

    assert len(rows) == 26
    for row in rows:
        if (
            row.sub_candidate in NAME_SUB_CANDIDATES
            and row.candidate != "Attribute"
            and row.candidate != "Operation"
        ):
            assert row.operation is None, row
        else:
            assert row.operation is not None and row.implemented, row

    # The whole coverage story holds: no gaps anywhere.
    assert coverage_gaps() == []
