"""Aggregation hierarchy concept schemas.

"The aggregation hierarchy expresses part-of relationships between two
object types. ... We propose a rooted aggregation hierarchy as one of our
generic concept schema patterns.  This concept schema allows the designer
to consider the part-of explosion for each aggregated object."
(Section 3.3.3; Figure 5 is the house/lumber-yard parts explosion.)

One concept schema is extracted per aggregation *root* -- a whole that is
not itself a part of anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.concepts.base import ConceptKind, ConceptSchema
from repro.model.schema import Schema


@dataclass(frozen=True)
class PartEdge:
    """One whole -> part link, named by the whole's to-parts path."""

    whole: str
    part: str
    path_name: str

    def describe(self) -> str:
        return f"{self.part} part-of {self.whole} (via {self.path_name})"


@dataclass(frozen=True)
class AggregationHierarchy(ConceptSchema):
    """A rooted parts explosion."""

    edges: tuple[PartEdge, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", ConceptKind.AGGREGATION)

    @property
    def root(self) -> str:
        """The root whole of the explosion (alias of ``anchor``)."""
        return self.anchor

    def parts_of(self, whole: str) -> list[str]:
        """Direct components of *whole* within this hierarchy."""
        return [e.part for e in self.edges if e.whole == whole]

    def wholes_of(self, part: str) -> list[str]:
        """Direct wholes of *part* within this hierarchy."""
        return [e.whole for e in self.edges if e.part == part]

    def bill_of_materials(self) -> list[tuple[int, str]]:
        """Depth-first (indent level, type) listing of the explosion.

        A shared part (one used by several wholes) appears once under
        each of its wholes, as in a conventional parts explosion.
        """
        listing: list[tuple[int, str]] = []

        def walk(node: str, level: int, path: frozenset[str]) -> None:
            listing.append((level, node))
            for part in self.parts_of(node):
                if part not in path:
                    walk(part, level + 1, path | {part})

        walk(self.root, 0, frozenset({self.root}))
        return listing


def constructor_edges(schema: Schema) -> list[tuple[str, str, str]]:
    """Implicit whole->part edges from collection-typed attributes.

    The paper's last proposed extension (Section 5): the object-oriented
    type constructors (set-of, list-of, bag-of, array-of) used to build
    complex objects "may be implemented as a variation of aggregation".
    An attribute like ``attribute set<Address> addresses`` therefore
    contributes an implicit (owner, element type, attribute name) edge
    when the element is an object type.
    """
    from repro.model.types import CollectionType, NamedType

    edges: list[tuple[str, str, str]] = []
    for interface in schema:
        for attribute in interface.attributes.values():
            if isinstance(attribute.type, CollectionType) and isinstance(
                attribute.type.element, NamedType
            ):
                edges.append(
                    (interface.name, attribute.type.element.name,
                     attribute.name)
                )
    return edges


def extract_aggregation_hierarchy(
    schema: Schema, root: str, include_constructors: bool = False
) -> AggregationHierarchy:
    """Extract the parts explosion rooted at *root*.

    Members are every type reachable from *root* by part-of edges; edges
    are all whole->part links between members.  With
    ``include_constructors`` set, collection-typed attributes over
    object types count as implicit aggregation edges too (the paper's
    type-constructor extension, see :func:`constructor_edges`).
    """
    schema.get(root)  # raise early on unknown types
    explicit = [
        (whole, part, end.name) for whole, part, end in schema.part_of_edges()
    ]
    all_edges = explicit + (
        constructor_edges(schema) if include_constructors else []
    )
    children: dict[str, list[tuple[str, str]]] = {}
    for whole, part, path_name in all_edges:
        children.setdefault(whole, []).append((part, path_name))
    members = {root}
    frontier = [root]
    while frontier:
        whole = frontier.pop()
        for part, _ in children.get(whole, []):
            if part not in members:
                members.add(part)
                frontier.append(part)
    edges = tuple(
        PartEdge(whole, part, path_name)
        for whole, part, path_name in all_edges
        if whole in members and part in members
    )
    return AggregationHierarchy(
        anchor=root, members=frozenset(members), edges=edges
    )


def aggregation_roots_with_constructors(schema: Schema) -> list[str]:
    """Aggregation roots when constructor edges count as part-of."""
    edges = [
        (whole, part) for whole, part, _ in schema.part_of_edges()
    ] + [(whole, part) for whole, part, _ in constructor_edges(schema)]
    wholes = {whole for whole, _ in edges}
    parts = {part for _, part in edges}
    return [name for name in schema.type_names() if name in wholes - parts]


def extract_all_aggregation_hierarchies(
    schema: Schema, include_constructors: bool = False
) -> list[AggregationHierarchy]:
    """One hierarchy per aggregation root, in declaration order."""
    roots = (
        aggregation_roots_with_constructors(schema)
        if include_constructors
        else schema.aggregation_roots()
    )
    return [
        extract_aggregation_hierarchy(schema, root, include_constructors)
        for root in roots
    ]
