"""Tests for O(changed) verification sweeps (DESIGN 5i).

Scoped sweeps verify only the touched-interface closure the mutation
spine reports; everything else is deferred to the caller's final full
sweep.  These tests pin the closure computation, the detect / defer
split, the configurable differential stride, the validation cache's
per-interface recheck, and the seed-sharded runner specs.
"""

from __future__ import annotations

import io

import pytest

from repro.catalog import load
from repro.model.interface import InterfaceDef
from repro.verify.fuzzer import fuzz
from repro.verify.invariants import (
    ALWAYS_FULL,
    DIFFERENTIAL_STRIDE_DEFAULT,
    INVARIANTS,
    SCOPED_CHECKS,
    check_schema,
    consume_sampling_events,
    differential_stride,
    set_differential_stride,
    touched_closure,
)
from repro.verify.runner import RunSpec, execute_run, run_campaign
from repro.workload.generator import WorkloadSpec, generate_schema


class TestTouchedClosure:
    def test_closure_adds_descendants_and_referencers(self):
        schema = load("university")
        closure = touched_closure(schema, {"Person"})
        assert "Person" in closure
        # Subtypes inherit the touched type's derived state ...
        assert "Student" in closure
        # ... and definitions referencing it can dangle or re-pair.
        assert set(schema.index.adjacency.referencers_of("Person")) <= set(
            closure
        )

    def test_closure_drops_undefined_names(self):
        schema = load("university")
        closure = touched_closure(schema, {"Person", "NoSuchType"})
        assert "NoSuchType" not in closure

    def test_closure_of_nothing_is_empty(self):
        assert touched_closure(load("university"), ()) == []


class TestScopedSweeps:
    def test_registry_covers_the_split(self):
        names = {inv.name for inv in INVARIANTS}
        assert set(SCOPED_CHECKS) <= names
        assert ALWAYS_FULL <= names
        assert not ALWAYS_FULL & set(SCOPED_CHECKS)

    def test_clean_schema_scoped_sweep_is_clean(self):
        schema = load("university")
        assert check_schema(schema, touched={"Person"}) == []

    def test_violation_inside_the_closure_is_detected(self):
        schema = load("university")
        schema.get("Person").add_supertype("Ghost")
        violations = check_schema(schema, touched={"Person"})
        assert "dangling-types" in {v.invariant for v in violations}

    def test_violation_outside_the_closure_is_deferred(self):
        schema = load("university")
        schema.get("Department").add_key(("no_such_attribute",))
        # Undergraduate is unrelated to Department: the scoped sweep
        # defers the broken key to the final full sweep ...
        assert touched_closure(schema, {"Undergraduate"}) == ["Undergraduate"]
        scoped = check_schema(
            schema, touched={"Undergraduate"}, names=["keys-resolve"]
        )
        assert scoped == []
        # ... which does report it.
        full = check_schema(schema, names=["keys-resolve"])
        assert "no_such_attribute" in str(full[0])

    def test_isa_cycle_through_a_touched_type_is_detected(self):
        schema = load("university")
        schema.get("Person").add_supertype("Student")  # Student isa Person
        violations = check_schema(schema, touched={"Person"})
        assert "isa-acyclic" in {v.invariant for v in violations}


class TestDifferentialStride:
    def test_default_matches_the_documented_threshold(self):
        assert differential_stride() == DIFFERENTIAL_STRIDE_DEFAULT == 256

    def test_small_stride_samples_and_counts_events(self):
        schema = generate_schema(WorkloadSpec(types=30, seed=1))
        old = set_differential_stride(8)
        try:
            consume_sampling_events()
            assert check_schema(
                schema, names=["index-generalization-vs-scan"]
            ) == []
            assert consume_sampling_events() > 0
        finally:
            set_differential_stride(old)

    def test_zero_means_exhaustive(self):
        schema = generate_schema(WorkloadSpec(types=30, seed=1))
        old = set_differential_stride(0)
        try:
            consume_sampling_events()
            assert check_schema(
                schema, names=["index-generalization-vs-scan"]
            ) == []
            assert consume_sampling_events() == 0
        finally:
            assert set_differential_stride(old) == 0

    def test_consume_drains_the_counter(self):
        consume_sampling_events()
        assert consume_sampling_events() == 0


class TestRecheckInterfaces:
    def test_clean_cache_has_nothing_stale(self):
        schema = load("university")
        schema.validation.validate()
        assert list(
            schema.validation.recheck_interfaces(schema.type_names())
        ) == []

    def test_interface_added_behind_the_spine_is_flagged(self):
        schema = load("university")
        schema.validation.validate()
        imposter = InterfaceDef("Imposter")
        schema.interfaces["Imposter"] = imposter  # bypasses the spine
        messages = list(schema.validation.recheck_interfaces(["Imposter"]))
        assert messages
        assert "no issue slots" in messages[0]

    def test_interface_removed_behind_the_spine_is_flagged(self):
        schema = load("university")
        schema.validation.validate()
        del schema.interfaces["Doctoral"]  # bypasses the spine
        messages = list(schema.validation.recheck_interfaces(["Doctoral"]))
        assert messages
        assert "still holds issue slots" in messages[0]


class TestScopedFuzz:
    def test_scoped_run_is_clean_and_counts_sweeps(self):
        report = fuzz(
            load("university"), seed=5, steps=40, check_every=3,
            scoped_checks=True,
        )
        assert report.ok, report.failure
        assert report.scoped_sweeps > 0
        assert f"scoped={report.scoped_sweeps}" in report.summary()

    def test_full_mode_reports_no_scoped_sweeps(self):
        report = fuzz(load("university"), seed=5, steps=20, check_every=4)
        assert report.ok
        assert report.scoped_sweeps == 0
        assert "scoped=" not in report.summary()


class TestRunnerSpecs:
    def test_execute_run_round_trips_a_catalog_spec(self):
        spec = RunSpec(
            family="catalog", name="university", seed=0, steps=20,
            check_every=4,
        )
        text, report = execute_run(spec)
        assert report is not None and report.ok
        assert "ok subject=university" in text

    def test_execute_run_builds_large_subjects_scoped(self):
        spec = RunSpec(
            family="large", name="large_120_0", seed=0, steps=15,
            check_every=5, cheap_every=5, types=120, scoped=True,
        )
        text, report = execute_run(spec)
        assert report is not None and report.ok
        assert report.scoped_sweeps > 0

    def test_parallel_campaign_output_matches_sequential(self):
        def run(jobs):
            out = io.StringIO()
            reports = run_campaign(
                seeds=2, steps=12, check_every=4, jobs=jobs, out=out
            )
            return out.getvalue(), [r.summary() for r in reports]

        sequential = run(1)
        parallel = run(2)
        assert parallel == sequential

    def test_unknown_family_is_rejected(self):
        from repro.verify.runner import subject_for

        spec = RunSpec(
            family="nope", name="x", seed=0, steps=1, check_every=1
        )
        with pytest.raises(ValueError):
            subject_for(spec)
