"""Tests for ``Workspace.preview(plan)`` and the instance-impact facet.

Designer feedback direction of the PR 7 tentpole: a pending plan is
applied to a throw-away fork, significant examples are diffed across
the two schemas, and what the plan newly admits or forbids surfaces as
ordinary feedback messages -- without mutating the workspace.
"""

import pytest

from repro.catalog import load
from repro.examples.preview import plan_instance_impact
from repro.knowledge.feedback import FeedbackLevel
from repro.model.fingerprint import schema_fingerprint
from repro.ops.effects import WILDCARD
from repro.ops.language import parse_operation
from repro.repository.workspace import Workspace


@pytest.fixture
def workspace():
    return Workspace(load("university"), "university_custom")


def op(text):
    return parse_operation(text)


class TestInstanceImpactFacet:
    def test_default_impact_covers_written_names(self):
        operation = op("add_attribute(Person, long, badge)")
        assert operation.instance_impact() == {"Person"}
        assert operation.effect_signature().instances == {"Person"}

    def test_operation_signature_ops_are_neutral(self):
        operation = op("add_operation(Person, void, greet)")
        assert operation.instance_neutral
        assert operation.instance_impact() == frozenset()

    def test_extent_name_ops_are_neutral(self):
        operation = op("modify_extent_name(Person, persons, people2)")
        assert operation.instance_neutral
        assert operation.instance_impact() == frozenset()

    def test_cascading_ops_reserve_the_whole_schema(self):
        operation = op("delete_type_definition(Person)")
        assert WILDCARD in operation.instance_impact()

    def test_plan_impact_is_the_union(self):
        plan = [
            op("add_attribute(Person, long, badge)"),
            op("add_operation(Person, void, greet)"),
            op("add_attribute(Course, long, ects)"),
        ]
        assert plan_instance_impact(plan) == {"Person", "Course"}


class TestPreview:
    def test_preview_does_not_mutate_the_workspace(self, workspace):
        before = schema_fingerprint(workspace.schema)
        depth = len(workspace.log)
        workspace.preview([op("add_attribute(Person, long, badge)")])
        assert schema_fingerprint(workspace.schema) == before
        assert len(workspace.log) == depth

    def test_instance_neutral_plan_says_so(self, workspace):
        preview = workspace.preview([op("add_operation(Person, void, greet)")])
        assert preview.ok
        assert preview.impacted == ()
        assert [f.code for f in preview.feedback] == ["instance-neutral"]

    def test_tightening_a_cardinality_forbids_data(self, workspace):
        preview = workspace.preview([op(
            "modify_relationship_cardinality"
            "(Department, members, set<Faculty>, Faculty)"
        )])
        assert preview.ok
        assert preview.impacted == ("Department",)
        assert preview.newly_forbidden
        cautions = [f for f in preview.feedback
                    if f.level is FeedbackLevel.CAUTION]
        assert cautions
        assert any("forbids" in str(f) for f in cautions)
        # The feedback carries the witnessing population itself.
        assert any("members=[" in str(f) for f in cautions)

    def test_loosening_a_cardinality_admits_data(self, workspace):
        tightened = Workspace(load("university"), "tight")
        tightened.apply(op(
            "modify_relationship_cardinality"
            "(Department, members, set<Faculty>, Faculty)"
        ))
        preview = tightened.preview([op(
            "modify_relationship_cardinality"
            "(Department, members, Faculty, set<Faculty>)"
        )])
        assert preview.ok
        assert preview.newly_admitted
        assert not preview.newly_forbidden

    def test_preflight_failure_reports_error_feedback(self, workspace):
        preview = workspace.preview([op("delete_attribute(Nope, x)")])
        assert not preview.ok
        assert all(f.level is FeedbackLevel.ERROR for f in preview.feedback)
        assert preview.feedback[0].code == "plan-preflight"

    def test_render_is_nonempty_either_way(self, workspace):
        preview = workspace.preview([op("add_operation(Person, void, greet)")])
        assert preview.render().strip()


class TestDesignerCliCommands:
    @pytest.fixture
    def session(self):
        from repro.designer.session import DesignSession
        from repro.odl.printer import print_schema

        return DesignSession.from_odl(
            print_schema(load("university")), name="university"
        )

    def test_examples_command(self, session):
        from repro.designer.cli import execute

        out = execute(session, "examples Department key")
        assert "admitted" in out and "rejected" in out

    def test_examples_command_empty_selection(self, session):
        from repro.designer.cli import execute

        out = execute(session, "examples NoSuchType")
        assert "no example pairs" in out

    def test_preview_command(self, session):
        from repro.designer.cli import execute

        out = execute(session, (
            "preview modify_relationship_cardinality"
            "(Department, members, set<Faculty>, Faculty)"
        ))
        assert "forbids" in out

    def test_preview_command_usage(self, session):
        from repro.designer.cli import execute

        assert execute(session, "preview").startswith("usage:")

    def test_help_lists_the_new_commands(self, session):
        from repro.designer.cli import execute

        text = execute(session, "help")
        assert "preview" in text and "examples" in text
