PYTHON ?= python
PYTHONPATH := src

.PHONY: test bench bench-smoke

## tier-1 suite (unit + integration under tests/)
test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

## full benchmark sweep; reports land in benchmarks/reports/
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks -q

## fast index-scaling regression tripwire (reduced sizes, relaxed floor)
bench-smoke:
	REPRO_BENCH_SMOKE=1 PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest \
		benchmarks/test_bench_index_scaling.py -q
