"""Part-of (aggregation) relationship operations.

Add and delete are available both in wagon wheels and in aggregation
hierarchy concept schemas (the Appendix A grammar lists them under
``<ww_part_of_ops>`` and ``<ah_part_of_ops>``); the modify operations --
target type, cardinality, order-by -- are aggregation hierarchy
operations only ("modification of ... part-of relationships ... is not
supported in wagon wheel concept schemas", Section 3.4).

The grammar distinguishes ``add_part_of_to_part_of_relationship`` (the
whole declares a collection of its parts) from
``add_part_of_to_whole_relationship`` (a part declares its whole); both
are served by one operation class here -- the target's shape (collection
vs. plain interface) selects the variant, exactly as in the grammar,
where the former carries a ``<collection_type>`` and the latter does not.
"""

from __future__ import annotations

from repro.concepts.base import ConceptKind
from repro.model.relationships import RelationshipKind
from repro.ops.relationship_common import (
    AddRelationshipBase,
    DeleteRelationshipBase,
    ModifyCardinalityBase,
    ModifyOrderByBase,
    ModifyTargetTypeBase,
)

_WW_AH = frozenset({ConceptKind.WAGON_WHEEL, ConceptKind.AGGREGATION})
_AH = frozenset({ConceptKind.AGGREGATION})


class AddPartOfRelationship(AddRelationshipBase):
    """``add_part_of_relationship(typename, target, path, Inv::path)``.

    A collection target (``set<Wall>``) makes this the to-part-of
    variant; a plain interface target makes it the to-whole variant.
    """

    op_name = "add_part_of_relationship"
    candidate = "Part-of Relationship"
    sub_candidate = "Traversal path name"
    action = "add"
    admissible_in = _WW_AH
    kind = RelationshipKind.PART_OF


class DeletePartOfRelationship(DeleteRelationshipBase):
    """``delete_part_of_relationship(typename, traversal_path)``."""

    op_name = "delete_part_of_relationship"
    candidate = "Part-of Relationship"
    sub_candidate = "Traversal path name"
    action = "delete"
    admissible_in = _WW_AH
    kind = RelationshipKind.PART_OF


class ModifyPartOfTargetType(ModifyTargetTypeBase):
    """``modify_part_of_target_type(typename, path[, old], new)``."""

    op_name = "modify_part_of_target_type"
    candidate = "Part-of Relationship"
    sub_candidate = "Target type"
    action = "modify"
    admissible_in = _AH
    kind = RelationshipKind.PART_OF


class ModifyPartOfCardinality(ModifyCardinalityBase):
    """``modify_part_of_cardinality(typename, path, old, new)``.

    Only allowed for the to-part-of end, which must keep a collection
    target (the grammar's comment: "only allowed for to-part-of end").
    """

    op_name = "modify_part_of_cardinality"
    candidate = "Part-of Relationship"
    sub_candidate = "One way cardinality"
    action = "modify"
    admissible_in = _AH
    kind = RelationshipKind.PART_OF


class ModifyPartOfOrderBy(ModifyOrderByBase):
    """``modify_part_of_order_by(typename, path, (old), (new))``."""

    op_name = "modify_part_of_order_by"
    candidate = "Part-of Relationship"
    sub_candidate = "Order by list"
    action = "modify"
    admissible_in = _AH
    kind = RelationshipKind.PART_OF
