"""repro.lint: the unified contract-lint framework.

Every fast path in this engine is sound only because of a *declared
contract*: mutators emit spine records and open with the CoW barrier,
operation classes declare the aspects their ``apply`` touches,
validation rules read only their declared ``RULE_SCOPES`` scopes, and
the reference specifications (``scan_*``, ``validate_schema``,
``Schema.copy``, ``DictAdjacency``) stay independent of the caches they
verify.  This package turns those contracts into statically checked,
reified artifacts (DESIGN.md §5k):

* :mod:`repro.lint.loader` -- one AST load of the codebase
  (:class:`~repro.lint.loader.Codebase`), shared by every pass;
* :mod:`repro.lint.callgraph` -- the transitive call-graph resolver
  (same-class methods over the MRO, module-level helpers, nested
  closures) both legacy ``tools/`` scripts used to reimplement;
* :mod:`repro.lint.findings` -- the finding model (stable rule ids,
  ``file:line`` anchors) and the checked-in baseline/suppression file;
* :mod:`repro.lint.registry` -- pass registration and the single-run
  driver behind ``python -m repro.lint``;
* :mod:`repro.lint.passes` -- the six contract passes (spine emission /
  CoW barrier / compiled plan, effect declarations, read-scope
  soundness, reference-spec independence, instance-impact honesty,
  silent-mutation detection).

Run ``python -m repro.lint`` (or ``make lint``) to execute every pass
in one invocation; ``--json`` emits the machine-readable report CI
archives.  New violations fail the run; grandfathered ones live in
``tools/lint_baseline.txt`` with a one-line justification each.
"""

from repro.lint.findings import Baseline, Finding, render_json, render_text
from repro.lint.loader import Codebase
from repro.lint.registry import LintContext, all_passes, run_passes

__all__ = [
    "Baseline",
    "Codebase",
    "Finding",
    "LintContext",
    "all_passes",
    "render_json",
    "render_text",
    "run_passes",
]
