"""Effects pass: every op class declares the aspects its apply mutates.

Migrated from ``tools/check_effects.py`` (now a thin shim re-exporting
:func:`check_operation_class` / :func:`reachable_mutators` from here).

The static plan analyzer (``repro.analysis.plan``) trusts each
operation class's declared effect signature, which is built from
``touched_aspects``.  An op whose ``apply`` (or the undo closure it
returns, or a helper it calls) reaches a spine mutator for an aspect
the class does not declare would make the analyzer's conflict graph --
and therefore validation batching -- unsound.

For every concrete class in :data:`repro.ops.registry.OPERATION_CLASSES`
the pass traces the mutator attribute calls transitively reachable from
``apply`` (through same-class methods resolved over the MRO and
module-level helpers resolved through each function's globals; nested
``undo`` closures are walked with their enclosing function) and asserts
the class's ``touched_aspects`` covers the aspect of every mutator
found.  Interface-level mutators (``add_interface`` & co.) require
``Aspect.MEMBERSHIP``.  Relationship mutators resolve to the class's
``kind`` when it has one, otherwise to all three relationship aspects.

Unlike the purely syntactic passes, ground truth here is *runtime*: the
registry tuple, ``touched_aspects``, ``kind``, and the MRO come from the
imported classes (so ad-hoc subclasses, e.g. in tests, trace correctly),
while function bodies are parsed from their sources.  The
:mod:`repro.lint.passes.instance_impact` pass reuses this tracer.
"""

from __future__ import annotations

import ast
import inspect
import textwrap

from repro.lint.findings import Finding
from repro.lint.registry import LintContext, register_pass
from repro.model.mutation import Aspect, aspect_for_kind
from repro.ops.registry import OPERATION_CLASSES

_REL_ASPECTS = frozenset({
    Aspect.REL_ASSOCIATION,
    Aspect.REL_PART_OF,
    Aspect.REL_INSTANCE_OF,
})

#: mutator method name -> aspects it can dirty.  ``None`` marks the
#: relationship family, resolved per-class via its ``kind`` attribute.
MUTATOR_ASPECTS: dict[str, frozenset[Aspect] | None] = {
    "add_supertype": frozenset({Aspect.ISA}),
    "remove_supertype": frozenset({Aspect.ISA}),
    "set_supertypes": frozenset({Aspect.ISA}),
    "set_extent": frozenset({Aspect.EXTENT}),
    "add_key": frozenset({Aspect.KEYS}),
    "remove_key": frozenset({Aspect.KEYS}),
    "insert_key": frozenset({Aspect.KEYS}),
    "replace_key_at": frozenset({Aspect.KEYS}),
    "add_attribute": frozenset({Aspect.ATTRS}),
    "remove_attribute": frozenset({Aspect.ATTRS}),
    "replace_attribute": frozenset({Aspect.ATTRS}),
    "reorder_attributes": frozenset({Aspect.ATTRS}),
    "add_operation": frozenset({Aspect.OPS}),
    "remove_operation": frozenset({Aspect.OPS}),
    "replace_operation": frozenset({Aspect.OPS}),
    "reorder_operations": frozenset({Aspect.OPS}),
    "add_relationship": None,
    "remove_relationship": None,
    "replace_relationship": None,
    "add_interface": frozenset({Aspect.MEMBERSHIP}),
    "remove_interface": frozenset({Aspect.MEMBERSHIP}),
    "reorder_interfaces": frozenset({Aspect.MEMBERSHIP}),
}


def _parse_function(func) -> ast.FunctionDef | None:
    """The (dedented) AST of a plain python function, or ``None``."""
    try:
        source = textwrap.dedent(inspect.getsource(func))
    except (OSError, TypeError):
        return None
    try:
        node = ast.parse(source).body[0]
    except SyntaxError:
        return None
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return node
    return None


def _callees(tree: ast.FunctionDef) -> tuple[set[str], set[str], set[str]]:
    """(mutator attrs, ``self.`` method names, bare-name calls) in *tree*."""
    mutators: set[str] = set()
    self_calls: set[str] = set()
    name_calls: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute):
            is_self = (
                isinstance(func.value, ast.Name) and func.value.id == "self"
            )
            if is_self:
                self_calls.add(func.attr)
            elif func.attr in MUTATOR_ASPECTS:
                mutators.add(func.attr)
        elif isinstance(func, ast.Name):
            name_calls.add(func.id)
    return mutators, self_calls, name_calls


def reachable_mutators(klass) -> set[str]:
    """Mutator names transitively reachable from ``klass.apply``."""
    found: set[str] = set()
    seen: set[object] = set()
    queue = [getattr(klass, "apply", None)]
    while queue:
        func = queue.pop()
        if func is None:
            continue
        raw = inspect.unwrap(func)
        if raw in seen:
            continue
        seen.add(raw)
        tree = _parse_function(raw)
        if tree is None:
            continue
        mutators, self_calls, name_calls = _callees(tree)
        found |= mutators
        for name in self_calls:
            queue.append(getattr(klass, name, None))
        module_globals = getattr(raw, "__globals__", {})
        for name in name_calls:
            target = module_globals.get(name)
            if inspect.isfunction(target):
                queue.append(target)
    return found


def required_aspects(klass) -> dict[str, frozenset[Aspect]]:
    """mutator name -> aspects ``klass`` must declare for reaching it."""
    required: dict[str, frozenset[Aspect]] = {}
    kind = getattr(klass, "kind", None)
    for name in sorted(reachable_mutators(klass)):
        aspects = MUTATOR_ASPECTS[name]
        if aspects is None:
            aspects = (
                frozenset({aspect_for_kind(kind)})
                if kind is not None
                else _REL_ASPECTS
            )
        required[name] = aspects
    return required


def check_operation_class(klass) -> list[str]:
    """Every way ``klass`` under-declares its effects (empty == clean)."""
    declared = frozenset(getattr(klass, "touched_aspects", frozenset()))
    failures: list[str] = []
    for name, aspects in required_aspects(klass).items():
        missing = aspects - declared
        if missing:
            labels = ", ".join(sorted(aspect.value for aspect in missing))
            failures.append(
                f"{klass.__module__}.{klass.__name__}: apply reaches "
                f"{name}() but touched_aspects lacks {{{labels}}}"
            )
    return failures


def _klass_anchor(klass) -> tuple[str, int]:
    """(file, line) of a class, best effort."""
    try:
        path = inspect.getsourcefile(klass) or klass.__module__
        _, line = inspect.getsourcelines(klass)
    except (OSError, TypeError):
        return klass.__module__, 1
    return path, line


def effect_findings() -> list[Finding]:
    findings: list[Finding] = []
    for klass in OPERATION_CLASSES:
        for message in check_operation_class(klass):
            path, line = _klass_anchor(klass)
            findings.append(
                Finding(
                    rule="effect-declaration",
                    path=path,
                    line=line,
                    symbol=f"{klass.__module__}:{klass.__name__}",
                    message=message.split(": ", 1)[-1],
                )
            )
    return findings


@register_pass(
    "effects",
    rules=("effect-declaration",),
    contract=(
        "touched_aspects covers every spine mutator reachable from each "
        "registered op's apply (plan-analyzer conflict graph soundness)"
    ),
)
def run(context: LintContext) -> list[Finding]:
    return effect_findings()
