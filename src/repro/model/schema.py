"""The schema container of the extended ODMG object model.

A :class:`Schema` is a named collection of :class:`~repro.model.interface.
InterfaceDef` objects plus graph-structured queries over the three link
families the paper's concept schemas are built from:

* the **generalization hierarchy** (supertype lists),
* the **aggregation hierarchy** (part-of relationship ends),
* the **instance-of hierarchy** (instance-of relationship ends).

The queries here are purely structural; validation rules live in
:mod:`repro.model.validation` and concept-schema extraction in
:mod:`repro.concepts`.

Change propagation runs through one channel: every mutation lands a
:class:`~repro.model.mutation.MutationRecord` on the schema's
:class:`~repro.model.mutation.MutationLog`, and the cache layers (index
generation, validation dirty journal, fingerprint memos) are subscribers
of that spine -- see DESIGN.md §5e.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.model.errors import (
    DuplicateNameError,
    InvalidModelError,
    UnknownTypeError,
)
from repro.model.index import SchemaIndex
from repro.model.interface import (
    InterfaceDef,
    _CowAnchor,
    _PayloadClaim,
    _SchemaShare,
)
from repro.model.mutation import Aspect, DirtyJournal, MutationLog
from repro.model.relationships import RelationshipEnd

if TYPE_CHECKING:
    from repro.model.validation_cache import ValidationCache

_MEMBERSHIP = frozenset({Aspect.MEMBERSHIP})
_ORDER: frozenset[Aspect] = frozenset()


@dataclass(slots=True)
class Schema:
    """A named, global schema: the unit the paper calls *shrink wrap*.

    Interfaces are held in insertion order (printed ODL is stable); lookup
    is by name, following the paper's name-equivalence assumption.
    """

    name: str
    interfaces: dict[str, InterfaceDef] = field(default_factory=dict)
    # Cache/history state, not schema content: excluded from __eq__/repr.
    _log: MutationLog = field(
        init=False, repr=False, compare=False, default=None  # type: ignore[assignment]
    )
    _journal: DirtyJournal = field(
        init=False, repr=False, compare=False, default=None  # type: ignore[assignment]
    )
    _index: SchemaIndex = field(
        init=False, repr=False, compare=False, default=None  # type: ignore[assignment]
    )
    _validation: "ValidationCache | None" = field(
        init=False, repr=False, compare=False, default=None
    )
    _analysis_hits: int = field(init=False, repr=False, compare=False, default=0)
    _analysis_misses: int = field(init=False, repr=False, compare=False, default=0)
    # Copy-on-write bookkeeping (DESIGN.md 5j).  ``_cow_sources`` names
    # the ancestor spines whose interfaces this schema may still share;
    # ``_cow_borrow`` is the one _SchemaShare registered on them;
    # ``_cow_anchor`` the weakly referenceable handle shares hold.
    _cow_sources: tuple = field(
        init=False, repr=False, compare=False, default=()
    )
    _cow_borrow: "_SchemaShare | None" = field(
        init=False, repr=False, compare=False, default=None
    )
    _cow_anchor: "_CowAnchor | None" = field(
        init=False, repr=False, compare=False, default=None
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidModelError("a schema must have a name")
        self._log = MutationLog()
        self._journal = DirtyJournal()
        self._log.subscribe(self._journal.observe)
        self._index = SchemaIndex(self)
        self._validation = None
        for interface in self.interfaces.values():
            self._adopt(interface)

    # ------------------------------------------------------------------
    # The mutation spine & its subscribers
    # ------------------------------------------------------------------

    @property
    def log(self) -> MutationLog:
        """The mutation spine: every change to this schema, in order."""
        return self._log

    @property
    def generation(self) -> int:
        """Monotonic mutation counter; stamps the index's caches.

        Derived from the spine -- the generation *is* the log's sequence
        number, so any emitted record invalidates stamped caches.
        """
        return self._log.seq

    @property
    def index(self) -> SchemaIndex:
        """The memoized reverse-adjacency index over this schema."""
        return self._index

    @property
    def journal(self) -> DirtyJournal:
        """Accumulated dirty notes since the validation cache last read it.

        A spine subscriber: records fold into it as they are emitted.
        """
        return self._journal

    @property
    def validation(self) -> "ValidationCache":
        """The lazily created incremental validation cache."""
        if self._validation is None:
            from repro.model.validation_cache import ValidationCache

            self._validation = ValidationCache(self)
        return self._validation

    def _cow_share(self) -> _SchemaShare:
        """This schema's one CoW share object (created lazily).

        The same share serves every borrow this schema holds -- a claim
        or spine registration settles per interface, so one weakly held
        object is enough for any number of shared interfaces.
        """
        if self._cow_borrow is None:
            if self._cow_anchor is None:
                self._cow_anchor = _CowAnchor(self)
            self._cow_borrow = _SchemaShare(self._cow_anchor)
        return self._cow_borrow

    def _adopt(self, interface: InterfaceDef) -> None:
        """Take the interface as schema content and record the membership.

        An interface nobody else owns is attached to this spine
        (ownership); one already attached to another schema's spine is
        *borrowed* copy-on-write -- the owner mutating it privatises a
        frozen copy into this schema, and mutating it through this
        schema goes via :meth:`edit`, which materialises first.

        The membership record's payload carries the live interface, not
        an eager copy; a :class:`~repro.model.interface._PayloadClaim`
        freezes it to the as-added state on the interface's first
        mutation, so replay and delete-undo stay exact while unmutated
        adds cost nothing.
        """
        if interface._spines and self._log not in interface._spines:
            interface.register_claim(self._cow_share())
        else:
            interface._attach_spine(self._log)
        payload = {"interface": interface}
        interface.register_claim(_PayloadClaim(payload))
        self._log.emit(
            "add_interface",
            interface=interface.name,
            aspects=_MEMBERSHIP,
            payload=payload,
        )

    def touch(self) -> None:
        """Invalidate all caches after an out-of-band mutation.

        Every :class:`InterfaceDef` mutator and the interface-management
        methods below emit onto the spine automatically; code that
        mutates schema content directly must call this instead.  The
        emitted record is *lossy* -- subscribers cannot tell what moved
        (the validation cache marks everything dirty) and the log can no
        longer be replayed -- so prefer :meth:`reorder_interfaces` for
        pure reorderings and real mutators for everything else.
        """
        self._log.emit("touch")

    def touch_order(self) -> None:
        """Invalidate after reordering ``interfaces`` without edits.

        Restoring declaration order on undo changes no definition, only
        the order issues are reported in, so the validation cache only
        needs to re-assemble (and re-run order-sensitive tie-breaks),
        not re-check any interface.  Emits the already-applied order so
        the record stays replayable.
        """
        self._log.emit(
            "reorder_interfaces",
            aspects=_ORDER,
            payload={"order": tuple(self.interfaces)},
        )

    def note_validation_scope(
        self, names: Iterable[str], aspects: frozenset[Aspect]
    ) -> None:
        """Record an operation's declared read/write scope on the spine.

        Belt-and-suspenders over the mutator-level records: operations
        declare the types and aspects they may have touched
        (``SchemaOperation.validation_scope``), and the workspace feeds
        that here so the dirty set is correct even for operations whose
        undo closures mutate state out of band.  Membership is resolved
        against current content at emit time so the journal (and any
        other subscriber) can stay schema-agnostic.
        """
        names = tuple(names)
        added: tuple[str, ...] = ()
        removed: tuple[str, ...] = ()
        rest = aspects
        if Aspect.MEMBERSHIP in aspects:
            added = tuple(n for n in names if n in self.interfaces)
            removed = tuple(n for n in names if n not in self.interfaces)
            rest = aspects - _MEMBERSHIP
        self._log.emit(
            "scope",
            aspects=aspects,
            payload={
                "names": names,
                "aspects": rest,
                "added": added,
                "removed": removed,
            },
        )

    # ------------------------------------------------------------------
    # Interface management
    # ------------------------------------------------------------------

    def add_interface(self, interface: InterfaceDef) -> None:
        """Add an interface; the type name must be free in the schema."""
        if interface.name in self.interfaces:
            raise DuplicateNameError(
                f"schema {self.name!r} already defines {interface.name!r}"
            )
        self.interfaces[interface.name] = interface
        self._adopt(interface)

    def remove_interface(self, name: str) -> InterfaceDef:
        """Remove and return the interface called *name*.

        The CoW barrier runs before the spine detaches: any fork still
        sharing the object privatises its copy now, while the borrow
        registrations on this spine can still reach it -- a detached
        object re-adopted and mutated elsewhere would otherwise change
        under the forks silently.
        """
        try:
            removed = self.interfaces.pop(name)
        except KeyError:
            raise UnknownTypeError(
                f"schema {self.name!r} does not define {name!r}"
            ) from None
        removed._cow_barrier()
        removed._detach_spine(self._log)
        self._log.emit(
            "remove_interface", interface=name, aspects=_MEMBERSHIP
        )
        return removed

    def reorder_interfaces(self, order: list[str]) -> None:
        """Rebuild ``interfaces`` in *order* (undo of a type deletion).

        *order* must be a permutation of the current type names.
        """
        if set(order) != set(self.interfaces) or len(order) != len(
            self.interfaces
        ):
            raise UnknownTypeError(
                f"schema {self.name!r}: reorder {list(order)!r} is not a "
                f"permutation of {self.type_names()!r}"
            )
        self.interfaces = {name: self.interfaces[name] for name in order}
        self._log.emit(
            "reorder_interfaces",
            aspects=_ORDER,
            payload={"order": tuple(order)},
        )

    def get(self, name: str) -> InterfaceDef:
        """Return the interface called *name* or raise ``UnknownTypeError``.

        A borrowed interface (shared copy-on-write after :meth:`fork`,
        or a shared projection member) is materialised on fetch -- the
        caller may mutate the result, and the mutation must land in
        *this* schema, not the share's owner.  Owned interfaces return
        in O(1); bulk read paths that never hand the object out
        (iteration, the index, validation) use ``interfaces`` directly
        and keep the share.  :meth:`edit` is the explicit-intent alias
        mutating code uses.
        """
        try:
            interface = self.interfaces[name]
        except KeyError:
            raise UnknownTypeError(
                f"schema {self.name!r} does not define {name!r}"
            ) from None
        if self._log in interface._spines:
            return interface
        return self._materialise(name, interface)

    def _materialise(self, name: str, interface: InterfaceDef) -> InterfaceDef:
        """Privatise a borrowed *interface* under *name* (the CoW fault).

        The share is copied, re-keyed, and attached to this spine, so
        later mutations land here and nowhere else.  Materialisation
        changes no schema content, so no record is emitted; the first
        real mutator call on the returned object emits as usual.
        """
        clone = interface.copy()
        self.interfaces[name] = clone
        clone._attach_spine(self._log)
        return clone

    def edit(self, name: str) -> InterfaceDef:
        """Fetch *name* for mutation (explicit-intent alias of :meth:`get`).

        Since :meth:`get` already materialises borrowed shares on fetch,
        ``edit`` adds nothing today; mutating code calls it anyway to
        mark the fetch as a write, which keeps the CoW fault sites
        greppable and lets the two paths diverge again if reads ever
        stop materialising.
        """
        return self.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self.interfaces

    def __iter__(self) -> Iterator[InterfaceDef]:
        return iter(self.interfaces.values())

    def __len__(self) -> int:
        return len(self.interfaces)

    def type_names(self) -> list[str]:
        """Interface names in declaration order."""
        return list(self.interfaces)

    # ------------------------------------------------------------------
    # Generalization hierarchy queries
    # ------------------------------------------------------------------

    def subtypes(self, name: str) -> list[str]:
        """Direct subtypes of *name*, in declaration order."""
        return list(self._index.subtype_map().get(name, ()))

    def ancestors(self, name: str) -> set[str]:
        """All (transitive) supertypes of *name*; excludes *name* itself.

        Only *resolved* supertypes count: a dangling supertype name is
        not a type of this schema, and including it would make
        ``isa_related`` asymmetric with ``descendants`` (which can never
        reach an undefined type).
        """
        interfaces = self.interfaces
        result: set[str] = set()
        frontier = [
            supertype
            for supertype in self.get(name).supertypes
            if supertype in interfaces
        ]
        while frontier:
            current = frontier.pop()
            if current in result:
                continue
            result.add(current)
            frontier.extend(
                supertype
                for supertype in interfaces[current].supertypes
                if supertype in interfaces
            )
        return result

    def descendants(self, name: str) -> set[str]:
        """All (transitive) subtypes of *name*; excludes *name* itself.

        Served from the index's incrementally maintained compact ISA
        adjacency (O(result) per query, no per-mutation rebuild); the
        ``index-vs-scan`` differential pins it to ``scan_descendants``.
        """
        self.get(name)  # raise for unknown types
        return self._index.descendants_of(name)

    def isa_related(self, first: str, second: str) -> bool:
        """True when the two types lie on one generalization path.

        This is the paper's *semantic stability* test: information may be
        moved between two object types only when one is an ancestor of the
        other (or they are the same type).
        """
        if first == second:
            return True
        return second in self.ancestors(first) or second in self.descendants(first)

    def generalization_roots(self) -> list[str]:
        """Types with subtypes but no resolved supertypes: hierarchy roots.

        A type whose only supertypes are dangling names tops every ISA
        path that actually exists in the schema, so it counts as a root.
        """
        subtype_map = self._index.subtype_map()
        interfaces = self.interfaces
        return [
            interface.name
            for interface in self
            if interface.name in subtype_map
            and not any(s in interfaces for s in interface.supertypes)
        ]

    def inherited_attributes(self, name: str) -> dict[str, str]:
        """Map attribute name -> defining type, walking supertypes.

        Local attributes win over inherited ones (overriding); among
        multiple supertypes the first declaration wins, matching the
        left-to-right linearisation ODL implies.
        """
        result: dict[str, str] = {}
        for owner in self._linearised_ancestry(name):
            for attr_name in self.get(owner).attributes:
                result.setdefault(attr_name, owner)
        return result

    def _linearised_ancestry(self, name: str) -> list[str]:
        """*name* followed by its ancestors, nearest first, depth-first.

        Iterative (explicit iterator stack) so 10k-deep supertype chains
        stay well clear of the interpreter recursion limit, preserving
        the exact preorder the recursive form produced.
        """
        interfaces = self.interfaces
        if name not in interfaces:
            return []
        order = [name]
        seen = {name}
        stack = [iter(interfaces[name].supertypes)]
        while stack:
            for supertype in stack[-1]:
                if supertype in seen or supertype not in interfaces:
                    continue
                seen.add(supertype)
                order.append(supertype)
                stack.append(iter(interfaces[supertype].supertypes))
                break
            else:
                stack.pop()
        return order

    # ------------------------------------------------------------------
    # Part-of / instance-of hierarchy queries
    # ------------------------------------------------------------------

    def part_of_edges(self) -> list[tuple[str, str, RelationshipEnd]]:
        """(whole, part, to-parts end) triples, in declaration order."""
        return list(self._index.part_of_edges())

    def instance_of_edges(self) -> list[tuple[str, str, RelationshipEnd]]:
        """(generic, instance, to-instances end) triples."""
        return list(self._index.instance_of_edges())

    def parts(self, name: str) -> list[str]:
        """Direct components of *name* in the aggregation hierarchy."""
        return list(self._index.parts_map().get(name, ()))

    def wholes(self, name: str) -> list[str]:
        """Direct wholes that *name* is a component of."""
        return list(self._index.wholes_map().get(name, ()))

    def aggregation_roots(self) -> list[str]:
        """Wholes that are not themselves parts of anything."""
        wholes = self._index.parts_map()
        parts = self._index.wholes_map()
        return [
            name for name in self.type_names()
            if name in wholes and name not in parts
        ]

    def instance_of_roots(self) -> list[str]:
        """Generic entities that are not instances of anything."""
        generics = self._index.instance_map()
        instances = self._index.generic_map()
        return [
            name for name in self.type_names()
            if name in generics and name not in instances
        ]

    # ------------------------------------------------------------------
    # Whole-schema helpers
    # ------------------------------------------------------------------

    def relationship_pairs(self) -> list[tuple[str, RelationshipEnd]]:
        """Every (owner name, end) pair in declaration order."""
        return list(self._index.relationship_pairs())

    def find_inverse(self, owner: str, end: RelationshipEnd) -> RelationshipEnd | None:
        """The declared inverse end of *end*, or ``None`` if missing."""
        if end.inverse_type not in self.interfaces:
            return None
        other = self.interfaces[end.inverse_type]
        inverse = other.relationships.get(end.inverse_name)
        if inverse is None:
            return None
        if inverse.target_type != owner or inverse.inverse_name != end.name:
            return None
        return inverse

    def copy(self, name: str | None = None) -> "Schema":
        """Structural copy of the schema (optionally renamed)."""
        duplicate = Schema(name or self.name)
        for interface in self:
            duplicate.add_interface(interface.copy())
        return duplicate

    def fork(self, name: str | None = None) -> "Schema":
        """A copy-on-write branch whose spine records its lineage.

        O(1)-ish in schema size: the fork *shares* every
        :class:`InterfaceDef` object with this schema (one dict of
        pointers, no interface copies, no population records) and its
        adjacency index starts as an overlay view of this schema's
        columns (no O(types) rebuild).  Divergence is paid per touched
        interface: mutating the fork goes through :meth:`edit`, which
        privatises the interface there, and mutating *this* schema runs
        the CoW barrier, which privatises it into any live fork first
        -- no write is ever visible across the boundary.

        The fork's log remembers the origin log and the seq it branched
        at (with ``base_seq`` 0, marking a record-free fork), so
        :func:`repro.analysis.diff.schema_diff` diffs divergence
        suffixes and :meth:`~repro.model.mutation.MutationLog.replay`
        rebuilds through the origin prefix.  Forks are registered weakly
        on every source spine; a fork that dies simply stops costing its
        sources anything (:meth:`release_cow` drops the registration
        eagerly for scratch forks).
        """
        duplicate = Schema(name or self.name)
        duplicate.interfaces = dict(self.interfaces)
        duplicate._log.link_origin(self._log)
        duplicate._cow_sources = (*self._cow_sources, self._log)
        share = duplicate._cow_share()
        for log in duplicate._cow_sources:
            log._cow_borrows.append(share)
        duplicate._index.adopt_base_adjacency(self._index)
        return duplicate

    def release_cow(self) -> None:
        """Withdraw this fork's borrow registrations from its sources.

        The registrations are weak, so this is optional -- but a
        short-lived scratch fork (propagation expansion) that releases
        eagerly stops costing its sources per-mutation settle checks
        right away instead of at the next garbage-collection cycle.
        After release the schema must not be used again: interfaces it
        still shares would silently reflect future source mutations.
        """
        borrow = self._cow_borrow
        if borrow is None:
            return
        self._cow_borrow = None
        for log in self._cow_sources:
            try:
                log._cow_borrows.remove(borrow)
            except ValueError:
                pass
        self._cow_sources = ()

    def validate(self) -> None:
        """Raise :class:`~repro.model.errors.ValidationError` on problems.

        Delegates to :func:`repro.model.validation.validate_schema` and
        raises when any error-severity issue is found.
        """
        from repro.model.validation import validate_schema

        validate_schema(self, raise_on_error=True)

    def note_analysis_cache(self, hit: bool) -> None:
        """Count one plan-analysis memo lookup (hit or miss).

        Fed by :meth:`repro.repository.workspace.Workspace.apply_plan`'s
        analysis memo so ``stats()`` exposes the retry-reuse rate.
        """
        if hit:
            self._analysis_hits += 1
        else:
            self._analysis_misses += 1

    def stats(self) -> dict[str, int]:
        """Size metrics plus spine and subscriber counters.

        Spine and subscriber counters live under namespaced keys
        (``spine.seq``, ``index.hits``, ``validation.full`` ...); the
        flat legacy keys (``index_hits``, ``validation_full`` ...) are
        kept as aliases for one release.
        """
        index = self._index.stats()
        if self._validation is not None:
            validation = self._validation.stats()
        else:
            validation = {
                "clean_hits": 0,
                "full_validations": 0,
                "incremental_validations": 0,
                "interfaces_revalidated": 0,
                "interfaces_reused": 0,
            }
        stats = {
            "interfaces": len(self),
            "attributes": sum(len(i.attributes) for i in self),
            "relationship_ends": sum(len(i.relationships) for i in self),
            "operations": sum(len(i.operations) for i in self),
            "supertype_links": sum(len(i.supertypes) for i in self),
            "part_of_links": self._index.part_of_edge_count(),
            "instance_of_links": self._index.instance_of_edge_count(),
            "spine.seq": self._log.seq,
            "spine.records": len(self._log),
            "spine.subscribers": self._log.subscriber_count,
            "spine.lossy": int(self._log.lossy),
            "index.hits": index["hits"],
            "index.misses": index["misses"],
            "index.rebuilds": index["rebuilds"],
            "index.generation": index["generation"],
            "validation.clean_hits": validation["clean_hits"],
            "validation.full": validation["full_validations"],
            "validation.incremental": validation["incremental_validations"],
            "validation.revalidated": validation["interfaces_revalidated"],
            "validation.reused": validation["interfaces_reused"],
            "analysis.hits": self._analysis_hits,
            "analysis.misses": self._analysis_misses,
        }
        # Deprecated flat aliases, kept for one release.
        stats["index_hits"] = stats["index.hits"]
        stats["index_misses"] = stats["index.misses"]
        stats["index_rebuilds"] = stats["index.rebuilds"]
        stats["index_generation"] = stats["index.generation"]
        stats["validation_clean_hits"] = stats["validation.clean_hits"]
        stats["validation_full"] = stats["validation.full"]
        stats["validation_incremental"] = stats["validation.incremental"]
        stats["validation_revalidated"] = stats["validation.revalidated"]
        stats["validation_reused"] = stats["validation.reused"]
        return stats

    def __str__(self) -> str:
        return f"schema {self.name} ({len(self)} interfaces)"


def schema_from_interfaces(name: str, interfaces: Iterable[InterfaceDef]) -> Schema:
    """Convenience constructor used by the catalog and tests."""
    schema = Schema(name)
    for interface in interfaces:
        schema.add_interface(interface)
    return schema
