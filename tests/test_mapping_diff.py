"""Unit tests for schema diff and the original-to-custom mapping."""

from repro.analysis.diff import ChangeStatus, diff_schemas
from repro.odl.parser import parse_schema
from repro.model.interface import InterfaceDef
from repro.repository.mapping import SchemaMapping, generate_mapping


def entries_of(diff, status, category=None):
    entries = diff.of_status(status)
    if category is not None:
        entries = [e for e in entries if e.category == category]
    return entries


class TestDiffStatuses:
    def test_identical_schemas(self, small):
        diff = diff_schemas(small, small.copy())
        assert diff.is_empty()
        assert all(
            e.status is ChangeStatus.UNCHANGED for e in diff.entries
        )

    def test_added_type_with_members(self, small):
        custom = small.copy("custom")
        from repro.model.attributes import Attribute
        from repro.model.interface import InterfaceDef
        from repro.model.types import scalar

        extra = InterfaceDef("Extra")
        extra.add_attribute(Attribute("x", scalar("long")))
        custom.add_interface(extra)
        diff = diff_schemas(small, custom)
        added_paths = {e.path for e in diff.of_status(ChangeStatus.ADDED)}
        assert {"Extra", "Extra.x"} <= added_paths

    def test_deleted_type_with_members(self, small):
        custom = small.copy("custom")
        custom.get("Employee").remove_relationship("works_in")
        custom.get("Department").remove_relationship("staff")
        custom.remove_interface("Department")
        diff = diff_schemas(small, custom)
        deleted_paths = {e.path for e in diff.of_status(ChangeStatus.DELETED)}
        assert "Department" in deleted_paths
        assert "Department.code" in deleted_paths

    def test_modified_attribute(self, small):
        custom = small.copy("custom")
        attribute = custom.get("Person").get_attribute("name")
        custom.get("Person").replace_attribute(attribute.with_size(99))
        diff = diff_schemas(small, custom)
        modified = entries_of(diff, ChangeStatus.MODIFIED, "attribute")
        assert [e.path for e in modified] == ["Person.name"]
        assert "string(30)" in modified[0].detail

    def test_extent_change(self, small):
        custom = small.copy("custom")
        custom.get("Person").extent = "persons"
        diff = diff_schemas(small, custom)
        modified = entries_of(diff, ChangeStatus.MODIFIED, "extent")
        assert len(modified) == 1

    def test_supertype_changes(self, small):
        custom = small.copy("custom")
        custom.get("Employee").remove_supertype("Person")
        diff = diff_schemas(small, custom)
        deleted = entries_of(diff, ChangeStatus.DELETED, "supertype")
        assert [e.path for e in deleted] == ["Employee ISA Person"]

    def test_key_changes(self, small):
        custom = small.copy("custom")
        custom.get("Person").remove_key(("id",))
        custom.get("Person").add_key(("id", "name"))
        diff = diff_schemas(small, custom)
        assert entries_of(diff, ChangeStatus.DELETED, "key")
        assert entries_of(diff, ChangeStatus.ADDED, "key")


class TestMoveDetection:
    def test_attribute_move_up(self, small):
        custom = small.copy("custom")
        moved = custom.get("Employee").remove_attribute("salary")
        custom.get("Person").add_attribute(moved)
        diff = diff_schemas(small, custom)
        moves = entries_of(diff, ChangeStatus.MOVED, "attribute")
        assert len(moves) == 1
        assert moves[0].path == "Employee.salary"
        assert moves[0].moved_to == "Person"
        # The arrival side is not double-reported as ADDED.
        assert not any(
            e.path == "Person.salary"
            for e in diff.of_status(ChangeStatus.ADDED)
        )

    def test_move_after_type_deletion(self):
        original = parse_schema(
            """
            interface A { attribute long x; };
            interface B : A { attribute long y; };
            """,
            name="orig",
        )
        custom = parse_schema(
            "interface A { attribute long x; attribute long y; };",
            name="custom",
        )
        diff = diff_schemas(original, custom)
        moves = entries_of(diff, ChangeStatus.MOVED, "attribute")
        assert [(m.path, m.moved_to) for m in moves] == [("B.y", "A")]

    def test_unrelated_same_name_is_not_a_move(self, small):
        custom = small.copy("custom")
        from repro.model.attributes import Attribute
        from repro.model.types import scalar

        custom.get("Employee").remove_attribute("salary")
        custom.get("Department").add_attribute(
            Attribute("salary", scalar("float"))
        )
        diff = diff_schemas(small, custom)
        # Department is not an ISA relative of Employee: delete + add.
        assert entries_of(diff, ChangeStatus.MOVED) == []
        assert any(
            e.path == "Employee.salary"
            for e in diff.of_status(ChangeStatus.DELETED)
        )


class TestMapping:
    def test_reuse_ratio_unchanged_schema(self, small):
        mapping = generate_mapping(small, small.copy("custom"))
        assert mapping.reuse_ratio() == 1.0

    def test_reuse_ratio_of_empty_mapping_is_one(self):
        """Regression: no entries must not divide by zero."""
        mapping = SchemaMapping("orig", "custom")
        assert mapping.reuse_ratio() == 1.0
        assert "reuse ratio" in mapping.render()

    def test_reuse_ratio_from_empty_shrink_wrap_schema(self):
        """An empty original has no constructs to lose: ratio is 1.0."""
        from repro.model.attributes import Attribute
        from repro.model.schema import Schema
        from repro.model.types import scalar

        original = Schema("empty")
        custom = Schema("custom")
        custom.add_interface(InterfaceDef("Added"))
        custom.get("Added").add_attribute(Attribute("x", scalar("long")))
        mapping = generate_mapping(original, custom)
        assert mapping.reuse_ratio() == 1.0
        assert len(mapping.added()) > 0

    def test_reuse_ratio_counts_survivors(self, small):
        custom = small.copy("custom")
        custom.get("Employee").remove_attribute("salary")
        mapping = generate_mapping(small, custom)
        assert 0.0 < mapping.reuse_ratio() < 1.0

    def test_corresponding_includes_moved(self, small):
        custom = small.copy("custom")
        moved = custom.get("Employee").remove_attribute("salary")
        custom.get("Person").add_attribute(moved)
        mapping = generate_mapping(small, custom)
        corresponding_paths = {e.path for e in mapping.corresponding()}
        assert "Employee.salary" in corresponding_paths

    def test_lookup(self, small):
        mapping = generate_mapping(small, small.copy("custom"))
        entry = mapping.lookup("Person.name")
        assert entry is not None
        assert entry.status is ChangeStatus.UNCHANGED
        assert mapping.lookup("Ghost.path") is None

    def test_render_mentions_counts(self, small):
        custom = small.copy("custom")
        custom.get("Employee").remove_attribute("salary")
        mapping = generate_mapping(small, custom)
        rendered = mapping.render()
        assert "reuse ratio" in rendered
        assert "Employee.salary" in rendered

    def test_summary_of_empty_diff(self, small):
        diff = diff_schemas(small, small.copy())
        assert "identical" in diff.summary()

    def test_counts(self, small):
        custom = small.copy("custom")
        custom.get("Employee").remove_attribute("salary")
        counts = diff_schemas(small, custom).counts()
        assert counts["deleted"] == 1
        assert counts["added"] == 0
