"""Unit tests for impact reports."""

from repro.concepts.decompose import decompose
from repro.knowledge.impact import impact_of
from repro.model.fingerprint import schemas_equal
from repro.ops.base import OperationContext
from repro.ops.attribute_ops import DeleteAttribute
from repro.ops.type_ops import DeleteTypeDefinition


class TestImpactOf:
    def test_cascades_listed_before_requested(self, small):
        report = impact_of(
            small, DeleteTypeDefinition("Department"),
            OperationContext(reference=small.copy()),
        )
        assert report.plan[-1] is report.requested
        assert [op.op_name for op in report.cascades] == ["delete_relationship"]

    def test_does_not_mutate_schema(self, small):
        pristine = small.copy()
        impact_of(
            small, DeleteTypeDefinition("Department"),
            OperationContext(reference=pristine),
        )
        assert schemas_equal(small, pristine)

    def test_affected_types_deduplicated(self, small):
        report = impact_of(
            small, DeleteTypeDefinition("Department"),
            OperationContext(reference=small.copy()),
        )
        assert len(report.affected_types) == len(set(report.affected_types))
        assert "Department" in report.affected_types
        assert "Employee" in report.affected_types

    def test_touched_concepts(self, university):
        decomposition = decompose(university)
        report = impact_of(
            university, DeleteAttribute("Course_Offering", "room"),
            OperationContext(reference=university.copy()), decomposition,
        )
        assert "ww:Course_Offering" in report.touched_concepts
        # Time_Slot's wheel shows Course_Offering on its rim.
        assert "ww:Time_Slot" in report.touched_concepts

    def test_cautions_included(self, small):
        report = impact_of(
            small, DeleteTypeDefinition("Person"),
            OperationContext(reference=small.copy()),
        )
        assert any(m.code == "delete-supertype-of" for m in report.cautions)

    def test_render_mentions_everything(self, small):
        report = impact_of(
            small, DeleteTypeDefinition("Department"),
            OperationContext(reference=small.copy()),
        )
        rendered = report.render()
        assert "delete_type_definition(Department)" in rendered
        assert "delete_relationship" in rendered
        assert "affected types:" in rendered

    def test_no_cascades_case(self, small):
        report = impact_of(
            small, DeleteAttribute("Employee", "salary"),
            OperationContext(reference=small.copy()),
        )
        assert report.cascades == []
        assert "cascades: none" in report.render()
