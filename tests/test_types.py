"""Unit tests for the type system (repro.model.types)."""

import pytest

from repro.model.errors import InvalidModelError
from repro.model.types import (
    VOID,
    CollectionType,
    NamedType,
    ScalarType,
    array_of,
    bag_of,
    is_type_ref,
    list_of,
    named,
    parse_type_text,
    referenced_interfaces,
    scalar,
    set_of,
)


class TestScalarType:
    def test_plain_scalar(self):
        assert str(ScalarType("short")) == "short"

    def test_sized_string(self):
        assert str(ScalarType("string", 30)) == "string(30)"

    def test_sized_char(self):
        assert str(ScalarType("char", 2)) == "char(2)"

    def test_unknown_scalar_rejected(self):
        with pytest.raises(InvalidModelError):
            ScalarType("integer")

    def test_size_on_unsized_scalar_rejected(self):
        with pytest.raises(InvalidModelError):
            ScalarType("short", 4)

    def test_non_positive_size_rejected(self):
        with pytest.raises(InvalidModelError):
            ScalarType("string", 0)

    def test_negative_size_rejected(self):
        with pytest.raises(InvalidModelError):
            ScalarType("string", -3)

    def test_equality_by_value(self):
        assert ScalarType("string", 30) == ScalarType("string", 30)
        assert ScalarType("string", 30) != ScalarType("string", 31)

    def test_hashable(self):
        assert len({ScalarType("long"), ScalarType("long")}) == 1

    def test_void_singleton(self):
        assert VOID == ScalarType("void")


class TestNamedType:
    def test_renders_as_name(self):
        assert str(NamedType("Course")) == "Course"

    def test_scalar_name_rejected(self):
        with pytest.raises(InvalidModelError):
            NamedType("string")

    def test_empty_name_rejected(self):
        with pytest.raises(InvalidModelError):
            NamedType("")

    def test_leading_digit_rejected(self):
        with pytest.raises(InvalidModelError):
            NamedType("1Course")


class TestCollectionType:
    def test_set_rendering(self):
        assert str(CollectionType("set", NamedType("Employee"))) == "set<Employee>"

    def test_sized_array_rendering(self):
        assert (
            str(CollectionType("array", ScalarType("short"), 10))
            == "array<short, 10>"
        )

    def test_nested_collection(self):
        inner = CollectionType("set", NamedType("A"))
        assert str(CollectionType("list", inner)) == "list<set<A>>"

    def test_unknown_kind_rejected(self):
        with pytest.raises(InvalidModelError):
            CollectionType("multiset", NamedType("A"))

    def test_size_on_set_rejected(self):
        with pytest.raises(InvalidModelError):
            CollectionType("set", NamedType("A"), 5)

    def test_collection_of_void_rejected(self):
        with pytest.raises(InvalidModelError):
            CollectionType("set", VOID)

    def test_non_positive_array_size_rejected(self):
        with pytest.raises(InvalidModelError):
            CollectionType("array", NamedType("A"), 0)


class TestShorthands:
    def test_scalar_shorthand(self):
        assert scalar("string", 20) == ScalarType("string", 20)

    def test_named_shorthand(self):
        assert named("Course") == NamedType("Course")

    def test_set_of_string_argument(self):
        assert set_of("Employee") == CollectionType("set", NamedType("Employee"))

    def test_set_of_scalar_name(self):
        assert set_of("long") == CollectionType("set", ScalarType("long"))

    def test_list_bag_array(self):
        assert str(list_of("A")) == "list<A>"
        assert str(bag_of("A")) == "bag<A>"
        assert str(array_of("A", 4)) == "array<A, 4>"

    def test_coerce_rejects_non_types(self):
        with pytest.raises(InvalidModelError):
            set_of(42)  # type: ignore[arg-type]


class TestIntrospection:
    def test_is_type_ref(self):
        assert is_type_ref(scalar("long"))
        assert is_type_ref(named("A"))
        assert is_type_ref(set_of("A"))
        assert not is_type_ref("A")

    def test_referenced_interfaces_scalar(self):
        assert referenced_interfaces(scalar("long")) == set()

    def test_referenced_interfaces_named(self):
        assert referenced_interfaces(named("Course")) == {"Course"}

    def test_referenced_interfaces_nested(self):
        assert referenced_interfaces(list_of(set_of("Course"))) == {"Course"}


class TestParseTypeText:
    def test_scalar(self):
        assert parse_type_text("string(30)") == scalar("string", 30)

    def test_collection(self):
        assert parse_type_text("set<Employee>") == set_of("Employee")

    def test_round_trip(self):
        for text in ("short", "string(5)", "set<A>", "array<long, 3>",
                     "list<set<B>>"):
            assert str(parse_type_text(text)) == text
