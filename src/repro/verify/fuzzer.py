"""Seeded operation-sequence fuzzer with a differential history model.

The fuzzer drives a :class:`~repro.repository.workspace.Workspace`
through a randomized sequence of ``apply`` / ``apply_bare`` /
``composite`` / ``undo`` / ``redo`` / ``reset`` steps, drawing concrete
operations from :mod:`repro.workload.generator` against the *current*
workspace schema.  Alongside the workspace it maintains its own tiny
model of what the history must look like -- a stack of schema
fingerprints mirroring the log and the redo stack -- and after every
step it checks the workspace against both that model and the invariant
registry (:mod:`repro.verify.invariants`).

The paper's closure contract makes rejection normal: most generated
operations are inadmissible in the current state and must raise
:class:`~repro.ops.base.OperationError` (or a model-layer
:class:`~repro.model.errors.SchemaError`) *without changing anything*.
The harness therefore distinguishes three outcomes per step:

* accepted  -- the schema changed; fingerprints and redo model advance;
* rejected  -- ``OperationError``; the fingerprint, log, and redo stack
  must be exactly as before (atomicity);
* broken    -- any other exception, or any model/invariant mismatch.

Everything is deterministic in ``(subject, seed, steps)``; a failing run
reduces to a minimal trace via :mod:`repro.verify.shrinker`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.model.fingerprint import memoized_schema_fingerprint, schema_fingerprint
from repro.model.mutation import replayable_kind
from repro.model.schema import Schema
from repro.model.errors import SchemaError
from repro.ops.base import OperationError, SchemaOperation
from repro.ops.composite import CompositeOperation
from repro.ops.type_ops import AddTypeDefinition
from repro.repository.workspace import Workspace
from repro.verify.invariants import (
    TIER_CHEAP,
    TIER_EXPENSIVE,
    Violation,
    check_workspace,
)
from repro.workload.generator import random_composite, random_operation

#: Exception types that mean "operation rejected, workspace untouched".
REJECTION_ERRORS = (OperationError, SchemaError)

#: Step kinds the fuzzer can execute.
ACTIONS = ("apply", "apply_bare", "composite", "undo", "redo", "reset")

#: Cumulative action weights: mostly applies, a healthy dose of history.
_ACTION_WEIGHTS = (
    ("apply", 0.60),
    ("apply_bare", 0.08),
    ("composite", 0.07),
    ("undo", 0.12),
    ("redo", 0.10),
    ("reset", 0.03),
)


@dataclass(frozen=True)
class FuzzStep:
    """One concrete step of a fuzz trace (replayable verbatim)."""

    action: str
    operation: SchemaOperation | None = None
    composite: CompositeOperation | None = None

    def describe(self) -> str:
        if self.operation is not None:
            return f"{self.action}: {self.operation.to_text()}"
        if self.composite is not None:
            return f"{self.action}: {self.composite.describe()}"
        return self.action


@dataclass
class FuzzFailure:
    """The first step at which the workspace broke its contract."""

    step_index: int
    step: FuzzStep
    violations: list[Violation]

    def render(self) -> str:
        lines = [f"step {self.step_index}: {self.step.describe()}"]
        lines.extend(f"  {violation}" for violation in self.violations)
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """Outcome of one fuzz run."""

    subject: str
    seed: int
    trace: list[FuzzStep] = field(default_factory=list)
    accepted: int = 0
    rejected: int = 0
    checks: int = 0
    #: Mid-run sweeps that ran in O(changed) scoped mode (DESIGN 5i).
    scoped_sweeps: int = 0
    #: Sweeps whose per-type differentials stride-sampled instead of
    #: probing exhaustively (the runner surfaces these -- no silent
    #: coverage caps).
    sampled_sweeps: int = 0
    failure: FuzzFailure | None = None

    @property
    def ok(self) -> bool:
        return self.failure is None

    def summary(self) -> str:
        status = "ok" if self.ok else "FAIL"
        text = (
            f"{status} subject={self.subject} seed={self.seed} "
            f"steps={len(self.trace)} accepted={self.accepted} "
            f"rejected={self.rejected} checks={self.checks}"
        )
        if self.scoped_sweeps:
            text += f" scoped={self.scoped_sweeps}"
        return text


class DifferentialHarness:
    """A workspace plus the fingerprint model it is checked against.

    ``fps`` mirrors the workspace log: ``fps[0]`` is the reference
    fingerprint and ``fps[i]`` the schema fingerprint after log entry
    ``i``.  Composite steps log one entry per primitive but only the
    final state is observed, so intermediate entries carry ``None`` and
    are backfilled lazily when an undo exposes them.  ``redo_fps``
    mirrors the redo stack with the fingerprint each entry must restore.
    """

    def __init__(
        self,
        reference: Schema,
        check_every: int = 4,
        invariant_filter: set[str] | None = None,
        cheap_every: int = 1,
        with_populations: bool = False,
        scoped_checks: bool = False,
    ) -> None:
        self.workspace = Workspace(reference, f"{reference.name}_fuzz")
        self.base_fp = schema_fingerprint(reference)
        self.fps: list[str | None] = [self.base_fp]
        self.redo_fps: list[str] = []
        self.check_every = max(1, check_every)
        # The cheap tier carries the index-vs-scan differentials, which
        # are O(types * ends) per check: fine after every step on the
        # catalog subjects, prohibitive on 1k-10k-type subjects.  Large
        # profiles raise this to check sparsely; the O(1) model checks
        # (_check_shape, fingerprint identities) still run every step.
        self.cheap_every = max(1, cheap_every)
        # Carry populations alongside the schema: at the expensive-tier
        # cadence, generate a witness population for the current schema
        # and require (a) the schema admits it and (b) a structural copy
        # agrees -- so a shrunk reproducer shows concrete witnessing
        # data, not just the operation trace.
        self.with_populations = with_populations
        # O(changed) mode: mid-run sweeps pass the spine's
        # touched-interface set since the last sweep to check_workspace,
        # so their cost is proportional to the steps between sweeps,
        # not the schema.  final_check stays a full sweep -- that is
        # the deferred half of the scoped-verification contract
        # (DESIGN 5i).
        self.scoped_checks = scoped_checks
        self._watermark_log = self.workspace.schema.log
        self._watermark_seq = self._watermark_log.seq
        self.invariant_filter = invariant_filter
        self.accepted = 0
        self.rejected = 0
        self.checks = 0
        self.scoped_sweeps = 0

    # ------------------------------------------------------------------

    def _fingerprint(self) -> str:
        return memoized_schema_fingerprint(self.workspace.schema)

    def _model_violation(self, name: str, message: str) -> list[Violation]:
        if self.invariant_filter is not None and name not in self.invariant_filter:
            return []
        return [Violation(name, message)]

    def execute(self, step: FuzzStep, step_index: int) -> list[Violation]:
        """Run one step; returns every violation it provoked."""
        try:
            violations = self._execute_action(step)
        except Exception as error:  # noqa: BLE001 - escapes are findings
            return self._model_violation(
                "unexpected-exception",
                f"{step.describe()} raised {type(error).__name__}: {error}",
            )
        violations.extend(self._check_shape())
        tiers = []
        if (step_index + 1) % self.cheap_every == 0:
            tiers.append(TIER_CHEAP)
        if (step_index + 1) % self.check_every == 0:
            tiers.append(TIER_EXPENSIVE)
        if tiers:
            self.checks += 1
            touched = self._touched_since_sweep() if self.scoped_checks else None
            if touched is not None:
                self.scoped_sweeps += 1
            violations.extend(
                check_workspace(
                    self.workspace, tiers=tiers, names=self.invariant_filter,
                    touched=touched,
                )
            )
            self._advance_watermark()
        if self.with_populations and TIER_EXPENSIVE in tiers:
            violations.extend(self._check_populations(step_index))
        return violations

    def _touched_since_sweep(self) -> set[str] | None:
        """Interface names the spine recorded since the last sweep.

        ``None`` forces a full sweep: the workspace swapped schemas
        (reset installs a fresh copy with its own log), or a lossy
        record (out-of-band ``touch``) hides what changed.
        """
        log = self.workspace.schema.log
        if log is not self._watermark_log:
            return None
        touched: set[str] = set()
        for record in log.records_since(self._watermark_seq):
            if record.interface is None and not replayable_kind(record.kind):
                return None
            touched.update(record.names())
        return touched

    def _advance_watermark(self) -> None:
        log = self.workspace.schema.log
        self._watermark_log = log
        self._watermark_seq = log.seq

    def _check_populations(self, step_index: int) -> list[Violation]:
        """The population differential (``with_populations`` runs only).

        :func:`~repro.workload.population.generate_population` guarantees
        its result is clean under the schema it generated against, so a
        live-schema rejection means the generator and
        :func:`~repro.instances.check.check_population` disagree about
        what the schema admits.  The structural-copy leg then re-checks
        the same population against ``schema.copy()``: a disagreement
        there means the verdict depended on the evolved schema's
        incremental caches rather than its structure.  Violation
        messages embed the rendered population -- the witnessing data a
        shrunk reproducer needs.
        """
        from repro.instances.check import check_population
        from repro.workload.population import generate_population

        schema = self.workspace.schema
        pop = generate_population(schema, seed=step_index)
        live = check_population(schema, pop)
        violations = []
        if live:
            violations.extend(self._model_violation(
                "population-admission",
                f"the schema rejects its own generated population: "
                f"{live[0]}\n{pop.render()}",
            ))
        rebuilt = check_population(schema.copy(), pop)
        if [str(issue) for issue in rebuilt] != [str(issue) for issue in live]:
            detail = rebuilt[0] if rebuilt else live[0]
            violations.extend(self._model_violation(
                "population-differential",
                "check_population disagrees between the live schema and "
                f"its structural copy: {detail}\n{pop.render()}",
            ))
        return violations

    def final_check(self) -> list[Violation]:
        """Full-tier check, then drain the undo stack back to base."""
        violations = list(
            check_workspace(self.workspace, names=self.invariant_filter)
        )
        while self.workspace.log:
            violations.extend(self._do_undo())
            if violations:
                return violations
        if self._fingerprint() != self.base_fp:
            violations.extend(
                self._model_violation(
                    "undo-identity",
                    "undoing every step did not restore the reference schema",
                )
            )
        return violations

    # ------------------------------------------------------------------
    # Step semantics
    # ------------------------------------------------------------------

    def _execute_action(self, step: FuzzStep) -> list[Violation]:
        if step.action in ("apply", "apply_bare"):
            return self._do_apply(step.operation, step.action == "apply")
        if step.action == "composite":
            return self._do_composite(step.composite)
        if step.action == "undo":
            return self._do_undo()
        if step.action == "redo":
            return self._do_redo()
        if step.action == "reset":
            return self._do_reset()
        raise ValueError(f"unknown fuzz action {step.action!r}")

    def _do_apply(
        self, operation: SchemaOperation | None, propagate: bool
    ) -> list[Violation]:
        assert operation is not None
        before_redo = len(self.redo_fps)
        try:
            self.workspace.apply(operation, propagate=propagate)
        except REJECTION_ERRORS:
            self.rejected += 1
            return self._check_unchanged(
                f"rejected {operation.to_text()}", before_redo
            )
        self.accepted += 1
        self.fps.append(self._fingerprint())
        self.redo_fps.clear()
        return []

    def _do_composite(
        self, composite: CompositeOperation | None
    ) -> list[Violation]:
        assert composite is not None
        before_redo = len(self.redo_fps)
        try:
            entries = self.workspace.apply_composite(composite)
        except REJECTION_ERRORS:
            self.rejected += 1
            violations = []
            fingerprint = self._fingerprint()
            if self.fps[-1] is not None and fingerprint != self.fps[-1]:
                violations.extend(
                    self._model_violation(
                        "atomicity",
                        f"failed composite {composite.describe()!r} changed "
                        "the schema",
                    )
                )
            # A failed composite clears the redo stack iff at least one
            # primitive succeeded before the failure (each success goes
            # through apply, which clears it).  Both depths are legal;
            # anything else is a history leak.
            if self.workspace.redo_depth == 0:
                self.redo_fps.clear()
            elif self.workspace.redo_depth != before_redo:
                violations.extend(
                    self._model_violation(
                        "history-shape",
                        "failed composite left redo depth "
                        f"{self.workspace.redo_depth}, expected 0 or "
                        f"{before_redo}",
                    )
                )
            return violations
        if not entries:
            self.rejected += 1
            return self._check_unchanged(
                f"empty composite {composite.describe()!r}", before_redo
            )
        self.accepted += 1
        self.fps.extend([None] * (len(entries) - 1))
        self.fps.append(self._fingerprint())
        self.redo_fps.clear()
        return []

    def _do_undo(self) -> list[Violation]:
        before = self._fingerprint()
        entry = self.workspace.undo_last()
        if entry is None:
            return self._check_unchanged("undo on empty log", len(self.redo_fps))
        popped = self.fps.pop()
        self.redo_fps.append(popped if popped is not None else before)
        fingerprint = self._fingerprint()
        if self.fps[-1] is None:
            # intermediate state of a composite, first time observed
            self.fps[-1] = fingerprint
            return []
        if fingerprint != self.fps[-1]:
            return self._model_violation(
                "undo-identity",
                f"undo of {entry.describe()!r} did not restore the "
                "pre-operation schema",
            )
        return []

    def _do_redo(self) -> list[Violation]:
        before_redo = len(self.redo_fps)
        try:
            entry = self.workspace.redo()
        except REJECTION_ERRORS:
            self.rejected += 1
            return self._check_unchanged("rejected redo", before_redo)
        if entry is None:
            if self.redo_fps:
                return self._model_violation(
                    "history-shape",
                    f"redo returned nothing with {len(self.redo_fps)} "
                    "undone steps outstanding",
                )
            return []
        expected = self.redo_fps.pop()
        fingerprint = self._fingerprint()
        self.fps.append(fingerprint)
        if fingerprint != expected:
            return self._model_violation(
                "redo-identity",
                f"redo of {entry.describe()!r} did not restore the "
                "post-operation schema",
            )
        return []

    def _do_reset(self) -> list[Violation]:
        self.workspace.reset()
        self.fps = [self.base_fp]
        self.redo_fps.clear()
        if self._fingerprint() != self.base_fp:
            return self._model_violation(
                "reset-identity", "reset did not restore the reference schema"
            )
        return []

    # ------------------------------------------------------------------
    # Model checks
    # ------------------------------------------------------------------

    def _check_unchanged(self, what: str, before_redo: int) -> list[Violation]:
        violations = []
        if self.fps[-1] is not None and self._fingerprint() != self.fps[-1]:
            violations.extend(
                self._model_violation("atomicity", f"{what} changed the schema")
            )
        if self.workspace.redo_depth != before_redo:
            violations.extend(
                self._model_violation(
                    "history-shape",
                    f"{what} moved redo depth from {before_redo} to "
                    f"{self.workspace.redo_depth}",
                )
            )
        return violations

    def _check_shape(self) -> list[Violation]:
        violations = []
        if len(self.workspace.log) != len(self.fps) - 1:
            violations.extend(
                self._model_violation(
                    "history-shape",
                    f"log length {len(self.workspace.log)} does not match "
                    f"the fingerprint model ({len(self.fps) - 1})",
                )
            )
        if self.workspace.redo_depth != len(self.redo_fps):
            violations.extend(
                self._model_violation(
                    "history-shape",
                    f"redo depth {self.workspace.redo_depth} does not match "
                    f"the redo model ({len(self.redo_fps)})",
                )
            )
        return violations


# ----------------------------------------------------------------------
# Trace generation and replay
# ----------------------------------------------------------------------


def _pick_action(rng: random.Random) -> str:
    roll = rng.random()
    total = 0.0
    for action, weight in _ACTION_WEIGHTS:
        total += weight
        if roll < total:
            return action
    return "apply"


def _make_step(schema: Schema, rng: random.Random, index: int) -> FuzzStep:
    action = _pick_action(rng)
    if action == "composite":
        composite = random_composite(schema, rng, index)
        if composite is not None:
            return FuzzStep("composite", composite=composite)
        action = "apply"
    if action in ("apply", "apply_bare"):
        operation = random_operation(schema, rng, index)
        if operation is None:
            operation = AddTypeDefinition(f"GenType{index:04d}")
        return FuzzStep(action, operation=operation)
    return FuzzStep(action)


def fuzz(
    reference: Schema,
    seed: int,
    steps: int = 100,
    check_every: int = 4,
    subject_name: str | None = None,
    cheap_every: int = 1,
    with_populations: bool = False,
    scoped_checks: bool = False,
) -> FuzzReport:
    """Run one seeded fuzz sequence against *reference*.

    Steps are generated lazily against the current workspace schema, so
    later operations can target types earlier operations created.  The
    resulting trace is concrete -- every step carries its exact
    operation -- and can be replayed (and shrunk) without the RNG.
    ``cheap_every`` spaces out the cheap invariant tier for large
    subjects where its full-scan differentials dominate the run;
    ``scoped_checks`` switches mid-run sweeps to the O(changed) scoped
    mode (the final sweep stays full).
    """
    from repro.verify.invariants import consume_sampling_events

    rng = random.Random(seed)
    harness = DifferentialHarness(
        reference,
        check_every=check_every,
        cheap_every=cheap_every,
        with_populations=with_populations,
        scoped_checks=scoped_checks,
    )
    report = FuzzReport(
        subject=subject_name or reference.name, seed=seed
    )
    consume_sampling_events()  # drain events left over from other runs
    for index in range(steps):
        step = _make_step(harness.workspace.schema, rng, index)
        report.trace.append(step)
        violations = harness.execute(step, index)
        if violations:
            report.failure = FuzzFailure(index, step, violations)
            break
    else:
        violations = harness.final_check()
        if violations:
            report.failure = FuzzFailure(
                len(report.trace),
                FuzzStep("undo"),
                violations,
            )
    report.accepted = harness.accepted
    report.rejected = harness.rejected
    report.checks = harness.checks
    report.scoped_sweeps = harness.scoped_sweeps
    report.sampled_sweeps = consume_sampling_events()
    return report


def replay(
    reference: Schema,
    trace: list[FuzzStep],
    check_every: int = 1,
    invariant_filter: set[str] | None = None,
    final: bool = True,
    with_populations: bool = False,
) -> FuzzFailure | None:
    """Re-run a concrete trace; returns the first failure, if any.

    This is the shrinker's test oracle: it must be deterministic for a
    fixed trace, and with ``invariant_filter`` it reproduces exactly the
    violation family under investigation (ignoring unrelated findings a
    mutated trace might provoke).  ``with_populations`` must match the
    original run when the failure under investigation is a population
    violation; ``invariant_filter`` keeps the oracle deterministic
    either way, since the population checks respect it by name.
    Replay always sweeps in full -- scoped mode exists to make *live*
    runs affordable; the oracle wants maximal sensitivity, and full
    sweeps check a superset of what any scoped sweep checked.
    """
    harness = DifferentialHarness(
        reference,
        check_every=check_every,
        invariant_filter=invariant_filter,
        with_populations=with_populations,
    )
    for index, step in enumerate(trace):
        violations = harness.execute(step, index)
        if violations:
            return FuzzFailure(index, step, violations)
    if final:
        violations = harness.final_check()
        if violations:
            return FuzzFailure(len(trace), FuzzStep("undo"), violations)
    return None
