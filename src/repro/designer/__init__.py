"""The interactive schema designer: sessions, REPL, and renderers."""

from repro.designer.cli import execute, main, run_commands
from repro.designer.docgen import document_repository, document_schema
from repro.designer.explain import (
    explain_aggregation,
    explain_concept,
    explain_generalization,
    explain_instance_of,
    explain_wagon_wheel,
)
from repro.designer.render import (
    concept_listing,
    render_aggregation,
    render_concept,
    render_generalization,
    render_instance_of,
    render_object_graph,
    render_wagon_wheel,
    to_dot,
)
from repro.designer.session import Deliverables, DesignSession

__all__ = [
    "Deliverables",
    "DesignSession",
    "concept_listing",
    "document_repository",
    "document_schema",
    "execute",
    "explain_aggregation",
    "explain_concept",
    "explain_generalization",
    "explain_instance_of",
    "explain_wagon_wheel",
    "main",
    "render_aggregation",
    "render_concept",
    "render_generalization",
    "render_instance_of",
    "render_object_graph",
    "render_wagon_wheel",
    "run_commands",
    "to_dot",
]
