"""Ablation: what the knowledge component's propagation rules buy.

DESIGN.md calls propagation out as a design choice; the bench removes it
and measures the consequence on a destructive workload (deleting every
fifth type of a synthetic schema):

* with propagation, every deletion succeeds and the schema stays valid;
* without it, the bare operations are rejected outright whenever other
  constructs still reference the type -- the designer would have to
  hand-order every dependent deletion (we also count the dangling
  references a non-validating system would have accumulated).
"""

from repro.model.validation import SEVERITY_ERROR, validate_schema
from repro.ops.base import ConstraintViolation, OperationContext
from repro.ops.type_ops import DeleteTypeDefinition
from repro.knowledge.propagation import expand
from repro.workload.generator import WorkloadSpec, generate_schema

SCHEMA = generate_schema(WorkloadSpec(types=50, seed=13))
VICTIMS = SCHEMA.type_names()[::5]


def delete_with_propagation():
    scratch = SCHEMA.copy("with")
    context = OperationContext(reference=SCHEMA)
    applied = 0
    for name in VICTIMS:
        for step in expand(scratch, DeleteTypeDefinition(name), context):
            step.apply(scratch, context)
            applied += 1
    return scratch, applied


def delete_without_propagation():
    scratch = SCHEMA.copy("without")
    context = OperationContext(reference=SCHEMA)
    rejected = 0
    forced_dangling = 0
    for name in VICTIMS:
        operation = DeleteTypeDefinition(name)
        try:
            operation.apply(scratch, context)
        except ConstraintViolation:
            rejected += 1
            # What a non-validating tool would have done: rip the type
            # out anyway and count the dangling references left behind.
            probe = scratch.copy("probe")
            probe.remove_interface(name)
            forced_dangling += sum(
                1
                for issue in validate_schema(probe)
                if issue.severity == SEVERITY_ERROR
            )
    return rejected, forced_dangling


def test_bench_ablation_with_propagation(benchmark, report):
    scratch, applied = benchmark(delete_with_propagation)
    errors = [
        issue
        for issue in validate_schema(scratch)
        if issue.severity == SEVERITY_ERROR
    ]
    report(
        "ablation_propagation_on",
        f"deleting {len(VICTIMS)} types with propagation: {applied} total "
        f"steps, 0 rejections, {len(errors)} structural errors afterwards.",
    )
    assert errors == []


def test_bench_ablation_without_propagation(benchmark, report):
    rejected, forced_dangling = benchmark(delete_without_propagation)
    report(
        "ablation_propagation_off",
        f"deleting {len(VICTIMS)} types without propagation: {rejected} of "
        f"{len(VICTIMS)} rejected; forcing the deletions anyway would have "
        f"left {forced_dangling} dangling-reference errors.",
    )
    assert rejected > 0
    assert forced_dangling > 0
