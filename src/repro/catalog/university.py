"""The university shrink wrap schema (Figures 3, 4, and 7).

This is the paper's running example: the Course Offering wagon wheel
(Figure 3) with its Syllabus / Book / Time Slot / Length spokes and the
dotted instance-of link to Course; the Student generalization hierarchy
(Figure 4) down to non-thesis masters students; and the elaboration
material of Figure 7 (Schedule, Student, Faculty) that the quickstart
example adds during customization.

The schema is written in extended ODL so loading it also exercises the
parser front end.
"""

from __future__ import annotations

from repro.model.schema import Schema
from repro.odl.parser import parse_schema

UNIVERSITY_ODL = """
// The university shrink wrap schema: the paper's running example.

interface Person {
    extent people;
    keys (id);
    attribute long id;
    attribute string(40) name;
    attribute string(60) address;
    string(40) display_name();
};

interface Student : Person {
    extent students;
    attribute float gpa;
    relationship set<Course_Offering> takes inverse Course_Offering::taken_by;
    void enroll(in Course_Offering offering) raises (OfferingFull);
};

interface Undergraduate : Student {
    attribute short class_year;
};

interface Graduate : Student {
    attribute string(40) advisor_name;
    relationship Department studies_in inverse Department::graduate_students;
};

interface Masters : Graduate {
    attribute string(20) program;
};

interface Thesis_Masters : Masters {
    attribute string(80) thesis_title;
};

interface Non_Thesis_Masters : Masters {
    attribute short project_credits;
};

interface Doctoral : Graduate {
    attribute string(80) dissertation_title;
    attribute boolean candidacy;
};

interface Faculty : Person {
    extent faculty;
    attribute string(20) rank;
    relationship set<Course_Offering> teaches inverse Course_Offering::taught_by;
    relationship Department member_of inverse Department::members;
};

interface Department {
    extent departments;
    keys (code);
    attribute string(10) code;
    attribute string(40) title;
    relationship set<Faculty> members inverse Faculty::member_of;
    relationship set<Graduate> graduate_students inverse Graduate::studies_in;
    relationship set<Course> offers inverse Course::offered_by;
};

interface Course {
    extent courses;
    keys (number);
    attribute string(10) number;
    attribute string(60) title;
    attribute short credits;
    relationship Department offered_by inverse Department::offers;
    instance_of relationship set<Course_Offering> offerings
        inverse Course_Offering::offering_of;
};

// Figure 3: the Course Offering wagon wheel.
interface Course_Offering {
    extent course_offerings;
    attribute short year;
    attribute string(10) term;
    attribute string(10) room;
    instance_of relationship Course offering_of inverse Course::offerings;
    relationship Syllabus described_by inverse Syllabus::describes;
    relationship set<Book> book_for inverse Book::used_in order_by (title);
    relationship Time_Slot offered_during inverse Time_Slot::schedules;
    relationship Length duration_of inverse Length::duration_for;
    relationship Faculty taught_by inverse Faculty::teaches;
    relationship set<Student> taken_by inverse Student::takes;
    short enrollment();
};

interface Syllabus {
    attribute string(120) topics;
    relationship Course_Offering describes inverse Course_Offering::described_by;
};

interface Book {
    keys (isbn);
    attribute string(20) isbn;
    attribute string(60) title;
    attribute string(40) author_name;
    relationship set<Course_Offering> used_in inverse Course_Offering::book_for;
};

interface Time_Slot {
    attribute string(20) days;
    attribute time starts;
    relationship set<Course_Offering> schedules
        inverse Course_Offering::offered_during;
};

interface Length {
    attribute short weeks;
    relationship set<Course_Offering> duration_for
        inverse Course_Offering::duration_of;
};
"""

#: The Figure 7 elaboration: a Schedule consisting of course offerings,
#: expressed in the Appendix A modification language.
FIGURE7_ELABORATION_SCRIPT = """
add_type_definition(Schedule)
add_attribute(Schedule, string(10), term)
add_part_of_relationship(Schedule, set<Course_Offering>, consists_of,
                         Course_Offering::scheduled_in)
"""

#: The correspondence-course simplification of Section 3.4: "courses are
#: offered by correspondence only ... the course offering concept schema
#: is simplified by removing the time slot entity and room attribute."
CORRESPONDENCE_SIMPLIFICATION_SCRIPT = """
delete_attribute(Course_Offering, room)
delete_type_definition(Time_Slot)
"""


def university_schema(name: str = "university") -> Schema:
    """Parse and return the university shrink wrap schema."""
    schema = parse_schema(UNIVERSITY_ODL, name=name)
    schema.validate()
    return schema
