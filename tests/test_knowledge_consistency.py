"""Unit tests for consistency checks and feedback plumbing."""

from repro.concepts.decompose import decompose
from repro.knowledge.consistency import (
    concept_interaction_feedback,
    consistency_report,
    design_quality_feedback,
    structural_feedback,
)
from repro.knowledge.feedback import (
    Feedback,
    FeedbackLevel,
    FeedbackLog,
    caution,
    error,
    info,
    warning,
)
from repro.odl.parser import parse_schema


class TestFeedbackPrimitives:
    def test_builders_set_levels(self):
        assert error("c", "s", "m").level is FeedbackLevel.ERROR
        assert caution("c", "s", "m").level is FeedbackLevel.CAUTION
        assert warning("c", "s", "m").level is FeedbackLevel.WARNING
        assert info("c", "s", "m").level is FeedbackLevel.INFO

    def test_str_format(self):
        message = error("code", "subject", "text")
        assert str(message) == "[error] code (subject): text"

    def test_log_accumulates_and_filters(self):
        log = FeedbackLog()
        log.add(error("a", "s", "m"))
        log.extend([info("b", "s", "m"), info("c", "s", "m")])
        assert len(log) == 3
        assert log.has_errors()
        assert len(log.at_level(FeedbackLevel.INFO)) == 2
        assert "[error] a" in log.render()

    def test_log_without_errors(self):
        log = FeedbackLog()
        log.add(info("b", "s", "m"))
        assert not log.has_errors()


class TestStructuralFeedback:
    def test_clean_schema(self, small):
        assert structural_feedback(small) == []

    def test_errors_surface_as_error_level(self):
        schema = parse_schema("interface A : Ghost {};", name="s")
        messages = structural_feedback(schema)
        assert messages
        assert all(m.level is FeedbackLevel.ERROR for m in messages)

    def test_warnings_surface_as_warning_level(self):
        schema = parse_schema(
            "interface A {}; interface B {}; interface C : A, B {};", name="s"
        )
        messages = structural_feedback(schema)
        assert any(m.code == "multi-root-hierarchy" for m in messages)
        assert all(m.level is FeedbackLevel.WARNING for m in messages)


class TestConceptInteraction:
    def test_anchor_deletion_reported(self, university):
        decomposition = decompose(university)
        workspace = university.copy()
        # Simulate the Section 3.4 simplification by brute force.
        workspace.get("Course_Offering").remove_relationship("offered_during")
        workspace.get("Time_Slot").remove_relationship("schedules")
        workspace.remove_interface("Time_Slot")
        messages = concept_interaction_feedback(workspace, decomposition)
        anchors = [m for m in messages if m.code == "concept-anchor-deleted"]
        assert any(m.subject == "ww:Time_Slot" for m in anchors)

    def test_member_deletion_reported(self, university):
        decomposition = decompose(university)
        workspace = university.copy()
        workspace.get("Course_Offering").remove_relationship("offered_during")
        workspace.get("Time_Slot").remove_relationship("schedules")
        workspace.remove_interface("Time_Slot")
        messages = concept_interaction_feedback(workspace, decomposition)
        members = [m for m in messages if m.code == "concept-members-deleted"]
        assert any(m.subject == "ww:Course_Offering" for m in members)

    def test_untouched_workspace_is_quiet(self, university):
        decomposition = decompose(university)
        assert concept_interaction_feedback(university, decomposition) == []


class TestDesignQuality:
    def test_empty_interface_flagged(self):
        schema = parse_schema("interface Lonely {};", name="s")
        messages = design_quality_feedback(schema)
        assert [m.code for m in messages] == ["empty-interface"]

    def test_hierarchy_member_not_flagged_as_empty(self):
        schema = parse_schema(
            "interface A { attribute long x; }; interface B : A {};", name="s"
        )
        assert design_quality_feedback(schema) == []

    def test_extent_without_key_flagged(self):
        schema = parse_schema(
            "interface A { extent xs; attribute long x; };", name="s"
        )
        messages = design_quality_feedback(schema)
        assert [m.code for m in messages] == ["extent-without-key"]

    def test_inherited_key_satisfies_extent(self):
        schema = parse_schema(
            """
            interface A { keys (id); attribute long id; };
            interface B : A { extent bs; };
            """,
            name="s",
        )
        assert design_quality_feedback(schema) == []

    def test_full_report_combines_layers(self, university):
        decomposition = decompose(university)
        report = consistency_report(university, decomposition)
        assert isinstance(report, list)
        assert all(isinstance(m, Feedback) for m in report)
