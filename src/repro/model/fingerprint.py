"""Canonical, order-independent fingerprints of schemas.

Two schemas that define the same interfaces with the same properties --
regardless of declaration order -- produce identical fingerprints.  The
decomposition/reconstruction property of concept schemas ("the union of
all the initial concept schemas gives the original shrink wrap schema",
Section 3.3.1) is tested with these fingerprints, as is mapping
generation by diff.
"""

from __future__ import annotations

from repro.model.interface import InterfaceDef
from repro.model.schema import Schema


def interface_fingerprint(interface: InterfaceDef) -> str:
    """Canonical single-string rendering of one interface.

    Properties are sorted by name so declaration order is irrelevant;
    property values render through their ``__str__`` forms, which encode
    every modifiable candidate (type, size, cardinality, inverse,
    order-by, signature).
    """
    parts = [f"interface {interface.name}"]
    parts.append("isa=" + ",".join(sorted(interface.supertypes)))
    parts.append(f"extent={interface.extent or ''}")
    keys = sorted("|".join(key) for key in interface.keys)
    parts.append("keys=" + ";".join(keys))
    for attribute in sorted(interface.attributes.values(), key=lambda a: a.name):
        parts.append(str(attribute))
    for end in sorted(interface.relationships.values(), key=lambda e: e.name):
        parts.append(str(end))
    for operation in sorted(interface.operations.values(), key=lambda o: o.name):
        parts.append(operation.signature())
    return "\n".join(parts)


def schema_fingerprint(schema: Schema) -> str:
    """Canonical rendering of a whole schema (name excluded).

    The schema's own name is deliberately left out: a custom schema is
    compared against its shrink wrap origin by content, not by title.
    """
    blocks = [
        interface_fingerprint(schema.interfaces[name])
        for name in sorted(schema.interfaces)
    ]
    return "\n---\n".join(blocks)


def schemas_equal(first: Schema, second: Schema) -> bool:
    """Content equality, ignoring declaration order and schema names."""
    return schema_fingerprint(first) == schema_fingerprint(second)


def memoized_schema_fingerprint(schema: Schema) -> str:
    """:func:`schema_fingerprint` cached against the mutation spine.

    The verification engine fingerprints the workspace several times per
    fuzz step (before/after apply, after undo, after redo); between
    mutations no record lands on the schema's log and the cached
    rendering is returned instead of re-walking every interface.  The
    memo invalidates itself on the next emitted record
    (:meth:`repro.model.mutation.MutationLog.memo`).
    """
    return schema.log.memo(  # type: ignore[return-value]
        "verify_fingerprint", lambda: schema_fingerprint(schema)
    )
