"""Decomposition payoff (ours): how much smaller each point of view is.

The introduction's motivation, quantified: "the designer is likely to be
overwhelmed when given the entire schema at once ... it is useful for
the designer to be able to consider the shrink wrap schema a piece at a
time."  For each catalog schema, the bench reports the global size, the
number of concept schemas, and the mean fraction of the global schema a
designer faces per concept schema.
"""

import pytest

from repro.analysis.metrics import decomposition_payoff, schema_metrics
from repro.catalog import SCHEMA_BUILDERS

# The payoff is a statement about non-trivial global schemas; the
# four-type EMSL chain is too small for the fraction bound to bite.
NAMES = ("university", "acedb", "lumber_yard")


@pytest.mark.parametrize("name", NAMES)
def test_bench_decomposition_payoff(benchmark, report, name):
    schema = SCHEMA_BUILDERS[name]()
    payoff = benchmark(decomposition_payoff, schema)
    metrics = schema_metrics(schema)
    report(
        f"payoff_{name}",
        metrics.render() + "\n\n" + payoff.render(),
    )

    # The decomposition's promise: each concept schema confronts the
    # designer with well under half of the global schema on average.
    assert payoff.mean_concept_fraction < 0.5
    assert payoff.concept_count >= payoff.global_types
