"""Per-pass fixture tests for the four new contract-lint passes.

Each pass gets minimal fixtures that trigger its finding, asserting the
stable rule id, the file, and the line -- plus the narrowing/exemption
behaviour that keeps the pass quiet on the shipped tree for the right
reasons rather than by accident.
"""

from pathlib import Path

from repro.lint.callgraph import CallGraph
from repro.lint.loader import Codebase
from repro.lint.passes.instance_impact import (
    POPULATION_NEUTRAL_MUTATORS,
    coverage_findings,
    neutrality_findings,
)
from repro.lint.passes.independence import independence_findings, spec_roots
from repro.lint.passes.read_scopes import check_rule_scopes
from repro.lint.passes.silent_writes import silent_write_findings
from repro.ops.attribute_ops import AddAttribute
from repro.ops.registry import OPERATION_CLASSES
from repro.ops.type_property_ops import AddExtentName

THIS_FILE = Path(__file__).name


# ----------------------------------------------------------------------
# read-scope soundness


READ_SCOPE_FIXTURE = '''
class Issue:
    def __init__(self, rule, severity, location, message):
        self.rule = rule


def tidy_issues(schema, interface):
    for supertype in interface.supertypes:
        yield Issue("tidy", "error", interface.name, "dangling supertype")
    for key in interface.keys:
        yield Issue("tidy", "error", interface.name, "bad key")
'''


def test_read_scope_violation_reports_rule_file_line():
    codebase = Codebase.from_sources({"fixture_validation": READ_SCOPE_FIXTURE})
    findings = check_rule_scopes(
        codebase,
        [("tidy", frozenset({"isa"}))],
        module_name="fixture_validation",
        universe=(),
    )
    assert len(findings) == 1
    finding = findings[0]
    assert finding.rule == "read-scope"
    assert finding.path == "<fixture_validation>"
    expected_line = READ_SCOPE_FIXTURE.splitlines().index(
        "    for key in interface.keys:"
    ) + 1
    assert finding.line == expected_line
    assert "keys" in finding.message


def test_read_scope_declared_aspects_pass():
    codebase = Codebase.from_sources({"fixture_validation": READ_SCOPE_FIXTURE})
    findings = check_rule_scopes(
        codebase,
        [("tidy", frozenset({"isa", "keys"}))],
        module_name="fixture_validation",
        universe=(),
    )
    assert findings == []


def test_read_scope_unanalyzable_rule_is_a_finding_not_a_skip():
    codebase = Codebase.from_sources({"fixture_validation": READ_SCOPE_FIXTURE})
    findings = check_rule_scopes(
        codebase,
        [("tidy", frozenset({"isa", "keys"})), ("ghost", frozenset({"isa"}))],
        module_name="fixture_validation",
        universe=(),
    )
    assert [f.rule for f in findings] == ["read-scope"]
    assert "ghost" in findings[0].message
    assert "cannot analyze" in findings[0].message


def test_read_scope_undeclared_issue_id_is_caught():
    codebase = Codebase.from_sources({"fixture_validation": READ_SCOPE_FIXTURE})
    findings = check_rule_scopes(
        codebase, [], module_name="fixture_validation", universe=()
    )
    assert len(findings) == 1
    assert "no RULE_SCOPES entry" in findings[0].message
    assert "'tidy'" in findings[0].message


KIND_GUARD_FIXTURE = '''
class Issue:
    def __init__(self, rule, severity, location, message):
        self.rule = rule


def linked_issues(schema, interface):
    for end in interface.relationships.values():
        if end.kind is RelationshipKind.ASSOCIATION:
            continue
        yield Issue("linked", "error", interface.name, "bad link")


def scan_issues(schema):
    for a, b in link_edges(schema, RelationshipKind.PART_OF):
        yield Issue("scan-linked", "error", a, "cyclic")


def link_edges(schema, kind):
    for interface in schema.interfaces.values():
        for end in interface.relationships.values():
            yield (interface.name, end.target_type)
'''


def test_kind_guard_narrows_relationship_reads():
    codebase = Codebase.from_sources({"fixture_validation": KIND_GUARD_FIXTURE})
    scopes = [
        ("linked", frozenset({"rel-part-of", "rel-instance-of"})),
        ("scan-linked", frozenset({"rel-part-of"})),
    ]
    findings = check_rule_scopes(
        codebase, scopes, module_name="fixture_validation", universe=()
    )
    # the guard excludes rel-association from linked_issues, and the
    # literal RelationshipKind.PART_OF argument pins link_edges' reads
    assert findings == []


def test_literal_kind_argument_does_not_overnarrow_other_rules():
    codebase = Codebase.from_sources({"fixture_validation": KIND_GUARD_FIXTURE})
    scopes = [
        ("linked", frozenset({"rel-part-of"})),  # missing rel-instance-of
        ("scan-linked", frozenset({"rel-part-of"})),
    ]
    findings = check_rule_scopes(
        codebase, scopes, module_name="fixture_validation", universe=()
    )
    assert len(findings) == 1
    assert findings[0].symbol.endswith("linked")
    assert "rel-instance-of" in findings[0].message


def test_real_rule_scopes_are_exhaustively_analyzed():
    """Every RULE_SCOPES rule must map to implementers on the real tree."""
    from repro.lint.passes.read_scopes import _runtime_scopes, rule_implementers

    codebase = Codebase.load()
    implementers = rule_implementers(codebase, "repro.model.validation")
    for rule, _aspects in _runtime_scopes():
        assert implementers.get(rule), f"rule {rule!r} has no implementer"


# ----------------------------------------------------------------------
# reference-spec independence


INDEPENDENCE_FIXTURE = {
    "repro.model.index": (
        "def scan_edges(schema):\n"
        "    return list(schema.interfaces)\n"
        "\n"
        "def scan_cheating(schema):\n"
        "    return schema._index.edges()\n"
    ),
}


def test_independence_fast_path_read_reports_rule_file_line():
    codebase = Codebase.from_sources(INDEPENDENCE_FIXTURE)
    graph = CallGraph(codebase)
    findings = independence_findings(graph, spec_roots(graph))
    assert len(findings) == 1
    finding = findings[0]
    assert finding.rule == "ref-independence"
    assert finding.path == "<repro.model.index>"
    assert finding.symbol == "repro.model.index:scan_cheating"
    assert finding.line == 5
    assert "_index" in finding.message


TRANSITIVE_INDEPENDENCE_FIXTURE = {
    "repro.model.index": (
        "def scan_edges(schema):\n"
        "    return _collect(schema)\n"
        "\n"
        "def _collect(schema):\n"
        "    return ColumnarAdjacency(schema).edges()\n"
    ),
}


def test_independence_flags_transitive_helper_and_class_reference():
    codebase = Codebase.from_sources(TRANSITIVE_INDEPENDENCE_FIXTURE)
    graph = CallGraph(codebase)
    findings = independence_findings(graph, spec_roots(graph))
    assert [f.symbol for f in findings] == ["repro.model.index:_collect"]
    assert "ColumnarAdjacency" in findings[0].message


def test_independence_clean_on_shipped_tree():
    codebase = Codebase.load()
    graph = CallGraph(
        codebase, method_universe=("Schema", "InterfaceDef", "DictAdjacency")
    )
    roots = spec_roots(graph)
    assert roots, "spec roots must not be empty on the real tree"
    assert independence_findings(graph, roots) == []


# ----------------------------------------------------------------------
# instance-impact honesty


class _LyingNeutral(AddAttribute):
    """Reaches add_attribute but claims instance neutrality."""

    instance_neutral = True


class _HonestNeutral(AddExtentName):
    """Extent names carry no instances; neutrality is honest."""


def test_lying_instance_neutral_op_is_caught():
    findings = neutrality_findings([_LyingNeutral])
    assert len(findings) == 1
    finding = findings[0]
    assert finding.rule == "instance-impact"
    assert finding.path.endswith(THIS_FILE)
    assert finding.line > 0
    assert "add_attribute" in finding.message


def test_honest_instance_neutral_op_passes():
    assert neutrality_findings([_HonestNeutral]) == []


def test_registered_neutral_ops_reach_only_neutral_mutators():
    assert neutrality_findings() == []


def test_population_neutral_set_stays_out_of_content_mutators():
    content = {"add_attribute", "remove_supertype", "add_relationship",
               "remove_interface", "add_key"}
    assert not content & POPULATION_NEUTRAL_MUTATORS


class _Unregistered(AddAttribute):
    """Concrete (inherits a string op_name) but not in the registry."""


def test_unregistered_concrete_op_is_caught():
    findings = coverage_findings(
        registered=OPERATION_CLASSES, package_prefix=__name__
    )
    symbols = {f.symbol for f in findings}
    assert f"{__name__}:_Unregistered" in symbols
    for finding in findings:
        assert finding.rule == "instance-impact"
        assert "not in OPERATION_CLASSES" in finding.message


def test_registry_covers_every_shipped_concrete_op():
    assert coverage_findings() == []


# ----------------------------------------------------------------------
# silent-mutation detection


SILENT_WRITE_FIXTURE = '''
def rename_attr(interface, old, new):
    attribute = interface.attributes.pop(old)
    interface.attributes[new] = attribute


class InterfaceDef:
    def add_attribute(self, attribute):
        self.attributes[attribute.name] = attribute


class PlanRow:
    operations: list

    def __init__(self):
        self.operations = []

    def push(self, op):
        self.operations.append(op)
'''


def test_silent_write_reports_rule_file_line():
    codebase = Codebase.from_sources({"fixture_mod": SILENT_WRITE_FIXTURE})
    findings = silent_write_findings(codebase)
    assert len(findings) == 2  # the pop() and the subscript store
    lines = sorted(f.line for f in findings)
    source_lines = SILENT_WRITE_FIXTURE.splitlines()
    assert lines == [
        source_lines.index("    attribute = interface.attributes.pop(old)") + 1,
        source_lines.index("    interface.attributes[new] = attribute") + 1,
    ]
    for finding in findings:
        assert finding.rule == "silent-write"
        assert finding.path == "<fixture_mod>"
        assert finding.symbol == "fixture_mod:rename_attr"


def test_owning_class_and_own_field_writes_are_exempt():
    codebase = Codebase.from_sources({"fixture_mod": SILENT_WRITE_FIXTURE})
    symbols = {f.symbol for f in silent_write_findings(codebase)}
    # InterfaceDef.add_attribute is the sanctioned site; PlanRow.push
    # appends to its own declared field
    assert symbols == {"fixture_mod:rename_attr"}


CONSTRUCTED_RECEIVER_FIXTURE = '''
class Report:
    attributes: list

    def __init__(self):
        self.attributes = []


def build(interface):
    report = Report()
    report.attributes.append("x")
    return report
'''


def test_constructor_typed_receiver_is_exempt():
    codebase = Codebase.from_sources({"fixture_mod": CONSTRUCTED_RECEIVER_FIXTURE})
    assert silent_write_findings(codebase) == []


def test_silent_writes_on_shipped_tree_are_all_baselined():
    from repro.lint.findings import Baseline
    from repro.lint.shims import DEFAULT_BASELINE

    codebase = Codebase.load()
    findings = silent_write_findings(codebase)
    baseline = Baseline.load(DEFAULT_BASELINE)
    new, _baselined, _stale = baseline.split(findings)
    assert new == []
    assert baseline.errors == []
