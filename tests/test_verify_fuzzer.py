"""Tests for the differential fuzzer and shrinker (repro.verify)."""

import pytest

from repro.catalog import load
from repro.model.fingerprint import schemas_equal
from repro.ops.base import FREE_CONTEXT
from repro.ops.type_ops import AddTypeDefinition
from repro.repository.workspace import Workspace
from repro.verify.fuzzer import FuzzStep, fuzz, replay
from repro.verify.shrinker import emit_pytest, shrink
from repro.workload.generator import WorkloadSpec, generate_schema


class TestCleanFuzzing:
    @pytest.mark.parametrize("name", ["university", "company"])
    def test_catalog_run_is_clean(self, name):
        report = fuzz(load(name), seed=7, steps=60)
        assert report.ok, report.failure.render()
        assert report.accepted > 0

    def test_generated_run_is_clean(self):
        schema = generate_schema(WorkloadSpec(types=10, seed=3))
        report = fuzz(schema, seed=3, steps=60)
        assert report.ok, report.failure.render()

    def test_rejections_are_counted_not_fatal(self):
        # enough steps that at least one generated operation is
        # inadmissible in the current state
        report = fuzz(load("sacchdb"), seed=1, steps=120)
        assert report.ok, report.failure.render()
        assert report.rejected > 0

    def test_trace_is_concrete_and_replayable(self):
        reference = load("lumber_yard")
        report = fuzz(reference, seed=5, steps=50)
        assert report.ok
        assert len(report.trace) == 50
        assert replay(load("lumber_yard"), report.trace) is None


class TestDeterminism:
    def test_same_seed_same_trace(self):
        first = fuzz(load("company"), seed=11, steps=40)
        second = fuzz(load("company"), seed=11, steps=40)
        assert [s.describe() for s in first.trace] == [
            s.describe() for s in second.trace
        ]
        assert (first.accepted, first.rejected) == (
            second.accepted, second.rejected
        )

    def test_different_seed_different_trace(self):
        first = fuzz(load("company"), seed=11, steps=40)
        second = fuzz(load("company"), seed=12, steps=40)
        assert [s.describe() for s in first.trace] != [
            s.describe() for s in second.trace
        ]


class TestHarnessCatchesMutations:
    """Mutation smoke-check: break an operation on purpose and prove the
    fuzzer finds it, the shrinker reduces it to a handful of steps, and
    the emitted reproducer is a valid failing test."""

    @pytest.fixture
    def broken_add_type_undo(self, monkeypatch):
        """AddTypeDefinition whose undo forgets to remove the type."""
        original = AddTypeDefinition.apply

        def broken(self, schema, context=FREE_CONTEXT):
            original(self, schema, context)
            return lambda: None

        monkeypatch.setattr(AddTypeDefinition, "apply", broken)

    def test_fuzzer_detects_broken_undo(self, broken_add_type_undo):
        report = fuzz(load("university"), seed=7, steps=60)
        assert not report.ok
        violated = {v.invariant for v in report.failure.violations}
        assert violated & {
            "undo-identity", "undo-redo-identity", "log-replay"
        }

    def test_shrinker_produces_tiny_reproducer(self, broken_add_type_undo):
        report = fuzz(load("university"), seed=7, steps=60)
        assert not report.ok
        result = shrink(load("university"), report.trace, report.failure)
        assert len(result.steps) <= 5, result.summary()
        # and the shrunk trace still reproduces on its own
        wanted = {v.invariant for v in result.failure.violations}
        assert replay(
            load("university"), result.steps,
            check_every=1, invariant_filter=wanted,
        ) is not None

    def test_emitted_reproducer_is_a_failing_test(
        self, broken_add_type_undo
    ):
        report = fuzz(load("university"), seed=7, steps=60)
        result = shrink(load("university"), report.trace, report.failure)
        source = emit_pytest(
            "load('university')", result.steps, result.failure,
            test_name="test_generated",
        )
        namespace: dict = {}
        exec(compile(source, "<reproducer>", "exec"), namespace)
        with pytest.raises(AssertionError):
            namespace["test_generated"]()

    def test_emitted_reproducer_passes_once_fixed(self):
        # Same trace as above, but with the real (unbroken) operation:
        # the reproducer must pass, i.e. it is checked-in-able.
        report = fuzz(load("university"), seed=7, steps=60)
        assert report.ok
        steps = report.trace[:5]
        source = emit_pytest(
            "load('university')",
            steps,
            # fabricate a failure record just for the header comment
            type(
                "F", (), {"violations": []}
            )(),
            test_name="test_generated",
        )
        namespace: dict = {}
        exec(compile(source, "<reproducer>", "exec"), namespace)
        namespace["test_generated"]()


class TestReplaySemantics:
    def test_undo_redo_reset_steps_execute(self):
        reference = load("university")
        trace = [
            FuzzStep("apply", operation=AddTypeDefinition("Alpha")),
            FuzzStep("apply", operation=AddTypeDefinition("Beta")),
            FuzzStep("undo"),
            FuzzStep("redo"),
            FuzzStep("undo"),
            FuzzStep("undo"),
            FuzzStep("reset"),
        ]
        assert replay(reference, trace) is None

    def test_subsequence_of_a_trace_is_a_valid_trace(self):
        # The shrinker's soundness argument: removing steps can only
        # turn later applies into rejections, never into crashes.
        reference = load("emsl_software")
        report = fuzz(reference, seed=2, steps=40)
        assert report.ok
        thinned = report.trace[::3]
        assert replay(load("emsl_software"), thinned) is None
