"""Translation to an entity-relationship model.

The second target Section 5 mentions: "translating the results to other
models such as entity relationship diagrams and relational models."
The ER model here is deliberately classical — entities with attributes
and key attributes, binary relationships with cardinalities, and ISA
links — plus a text rendering in the style of an ER diagram legend.

Part-of and instance-of relationships translate to ordinary ER
relationships stereotyped ``<<part-of>>`` / ``<<instance-of>>`` with the
1:N cardinality made explicit; their special semantics are a property of
the extended object model that plain ER cannot carry structurally.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.model.relationships import RelationshipKind
from repro.model.schema import Schema
from repro.model.types import CollectionType


@dataclass(frozen=True, slots=True)
class ErAttribute:
    """One attribute of an ER entity."""

    name: str
    domain: str
    is_key: bool = False
    is_multivalued: bool = False

    def render(self) -> str:
        marks = ""
        if self.is_key:
            marks += " [key]"
        if self.is_multivalued:
            marks += " [multi]"
        return f"{self.name}: {self.domain}{marks}"


@dataclass
class ErEntity:
    """One ER entity with its attributes and ISA parents."""

    name: str
    attributes: list[ErAttribute] = field(default_factory=list)
    isa: list[str] = field(default_factory=list)


@dataclass(frozen=True, slots=True)
class ErRelationship:
    """One binary ER relationship with role cardinalities."""

    name: str
    first_entity: str
    first_cardinality: str  # "1" or "N"
    second_entity: str
    second_cardinality: str
    stereotype: str = ""  # "", "part-of", "instance-of"

    def render(self) -> str:
        tag = f" <<{self.stereotype}>>" if self.stereotype else ""
        return (
            f"{self.first_entity} ({self.first_cardinality}) -- {self.name}"
            f"{tag} -- ({self.second_cardinality}) {self.second_entity}"
        )


@dataclass
class ErModel:
    """The translated ER model."""

    name: str
    entities: list[ErEntity] = field(default_factory=list)
    relationships: list[ErRelationship] = field(default_factory=list)

    def entity(self, name: str) -> ErEntity:
        for entity in self.entities:
            if entity.name == name:
                return entity
        raise KeyError(name)

    def render(self) -> str:
        lines = [f"ER model of schema {self.name!r}", ""]
        for entity in self.entities:
            header = f"entity {entity.name}"
            if entity.isa:
                header += " ISA " + ", ".join(entity.isa)
            lines.append(header)
            lines.extend(
                f"    {attribute.render()}" for attribute in entity.attributes
            )
        if self.relationships:
            lines.append("")
            lines.extend(
                relationship.render() for relationship in self.relationships
            )
        return "\n".join(lines) + "\n"


_STEREOTYPES = {
    RelationshipKind.ASSOCIATION: "",
    RelationshipKind.PART_OF: "part-of",
    RelationshipKind.INSTANCE_OF: "instance-of",
}


def to_er(schema: Schema) -> ErModel:
    """Translate *schema* into an :class:`ErModel`."""
    model = ErModel(schema.name)
    for interface in schema:
        key_attributes = {
            attr_name for key in interface.keys for attr_name in key
        }
        entity = ErEntity(interface.name, isa=list(interface.supertypes))
        for attribute in interface.attributes.values():
            entity.attributes.append(
                ErAttribute(
                    attribute.name,
                    str(attribute.type),
                    is_key=attribute.name in key_attributes,
                    is_multivalued=isinstance(attribute.type, CollectionType),
                )
            )
        model.entities.append(entity)
    handled: set[frozenset[tuple[str, str]]] = set()
    for owner, end in schema.relationship_pairs():
        pair = frozenset(
            {(owner, end.name), (end.inverse_type, end.inverse_name)}
        )
        if pair in handled:
            continue
        handled.add(pair)
        inverse = schema.find_inverse(owner, end)
        inverse_many = inverse.is_to_many if inverse is not None else False
        model.relationships.append(
            ErRelationship(
                name=end.name,
                first_entity=owner,
                # The owner participates once per target instance set the
                # *inverse* sees; ER cardinalities are written from the
                # relationship's perspective.
                first_cardinality="N" if inverse_many else "1",
                second_entity=end.target_type,
                second_cardinality="N" if end.is_to_many else "1",
                stereotype=_STEREOTYPES[end.kind],
            )
        )
    return model


def to_er_text(schema: Schema) -> str:
    """Translate *schema* straight to the text rendering."""
    return to_er(schema).render()
