"""The knowledge component of the interactive schema designer.

Figure 1's "Knowledge Component": consistency checks, propagation rules,
and constraints, all of which "generate feedback for the designer".
"""

from repro.knowledge.consistency import (
    concept_interaction_feedback,
    consistency_report,
    design_quality_feedback,
    structural_feedback,
)
from repro.knowledge.constraints import CAUTION_CHECKS, cautions_for
from repro.knowledge.feedback import (
    Feedback,
    FeedbackLevel,
    FeedbackLog,
    caution,
    error,
    info,
    warning,
)
from repro.knowledge.impact import ImpactReport, impact_of
from repro.knowledge.propagation import direct_cascades, expand
from repro.knowledge.suggestions import Suggestion, suggest_repairs

__all__ = [
    "CAUTION_CHECKS",
    "Feedback",
    "FeedbackLevel",
    "FeedbackLog",
    "ImpactReport",
    "caution",
    "cautions_for",
    "concept_interaction_feedback",
    "consistency_report",
    "design_quality_feedback",
    "direct_cascades",
    "error",
    "expand",
    "impact_of",
    "info",
    "structural_feedback",
    "Suggestion",
    "suggest_repairs",
    "warning",
]
