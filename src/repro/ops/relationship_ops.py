"""Association relationship operations (the ODMG ``relationship`` clause).

Per Table 1, wagon wheels own add/delete and the cardinality / order-by
modifications; re-targeting an end (``modify_relationship_target_type``)
is a generalization hierarchy operation because it moves a relationship
participant along an ISA path (the Figure 8 example).
"""

from __future__ import annotations

from repro.concepts.base import ConceptKind
from repro.model.relationships import RelationshipKind
from repro.ops.relationship_common import (
    AddRelationshipBase,
    DeleteRelationshipBase,
    ModifyCardinalityBase,
    ModifyOrderByBase,
    ModifyTargetTypeBase,
)

_WW = frozenset({ConceptKind.WAGON_WHEEL})
_GH = frozenset({ConceptKind.GENERALIZATION})


class AddRelationship(AddRelationshipBase):
    """``add_relationship(typename, target, path, Inverse::path[, (order)])``."""

    op_name = "add_relationship"
    candidate = "Relationship"
    sub_candidate = "Traversal path name"
    action = "add"
    admissible_in = _WW
    kind = RelationshipKind.ASSOCIATION


class DeleteRelationship(DeleteRelationshipBase):
    """``delete_relationship(typename, traversal_path)``."""

    op_name = "delete_relationship"
    candidate = "Relationship"
    sub_candidate = "Traversal path name"
    action = "delete"
    admissible_in = _WW
    kind = RelationshipKind.ASSOCIATION


class ModifyRelationshipTargetType(ModifyTargetTypeBase):
    """``modify_relationship_target_type(typename, path[, old], new)``.

    Moves a relationship participant up or down the generalization
    hierarchy (Figure 8); see
    :class:`repro.ops.relationship_common.ModifyTargetTypeBase` for the
    two accepted call shapes.
    """

    op_name = "modify_relationship_target_type"
    candidate = "Relationship"
    sub_candidate = "Target type"
    action = "modify"
    admissible_in = _GH
    kind = RelationshipKind.ASSOCIATION


class ModifyRelationshipCardinality(ModifyCardinalityBase):
    """``modify_relationship_cardinality(typename, path, old, new)``."""

    op_name = "modify_relationship_cardinality"
    candidate = "Relationship"
    sub_candidate = "One way cardinality"
    action = "modify"
    admissible_in = _WW
    kind = RelationshipKind.ASSOCIATION


class ModifyRelationshipOrderBy(ModifyOrderByBase):
    """``modify_relationship_order_by(typename, path, (old), (new))``."""

    op_name = "modify_relationship_order_by"
    candidate = "Relationship"
    sub_candidate = "Order by list"
    action = "modify"
    admissible_in = _WW
    kind = RelationshipKind.ASSOCIATION
