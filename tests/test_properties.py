"""Property-based tests (hypothesis) for the library's core invariants.

Two generation styles are used:

* a hypothesis *composite strategy* building arbitrary valid schemas
  construct by construct (``schemas()``);
* the deterministic workload generator driven by hypothesis-chosen
  seeds/sizes, which additionally produces valid *operation streams*.

Invariants under test:

1. printed ODL re-parses to an equal schema (front-end round trip);
2. decompose -> reconstruct is the identity (Section 3.3.1);
3. apply -> undo is the identity for every generated operation;
4. the operation language round-trips every generated operation;
5. the add-only completeness script rebuilds any generated schema
   from scratch (Section 3.5 reachability);
6. synthesis produces a script that provably reaches the target.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.analysis.completeness import add_only_script
from repro.analysis.synthesis import synthesize_operations
from repro.concepts.decompose import decompose, reconstruct
from repro.knowledge.propagation import expand
from repro.model.attributes import Attribute
from repro.model.fingerprint import schema_fingerprint, schemas_equal
from repro.model.interface import InterfaceDef
from repro.model.relationships import RelationshipEnd, RelationshipKind
from repro.model.schema import Schema
from repro.model.types import NamedType, ScalarType, set_of
from repro.odl.parser import parse_schema
from repro.odl.printer import print_schema
from repro.ops.base import OperationContext
from repro.ops.language import parse_operation
from repro.workload.generator import (
    WorkloadSpec,
    generate_operations,
    generate_schema,
)

_SCALARS = st.sampled_from(
    [
        ScalarType("short"),
        ScalarType("long"),
        ScalarType("boolean"),
        ScalarType("date"),
        ScalarType("string", 10),
        ScalarType("string", 40),
    ]
)

_SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def schemas(draw) -> Schema:
    """Arbitrary small, structurally valid schemas."""
    type_count = draw(st.integers(min_value=1, max_value=6))
    schema = Schema("generated")
    names = [f"T{i}" for i in range(type_count)]
    for index, name in enumerate(names):
        interface = InterfaceDef(name)
        attr_count = draw(st.integers(min_value=0, max_value=3))
        for attr_index in range(attr_count):
            interface.add_attribute(
                Attribute(f"a{attr_index}", draw(_SCALARS))
            )
        if draw(st.booleans()):
            interface.extent = f"{name.lower()}_ext"
        # ISA edges only to earlier types: acyclic by construction.
        if index > 0 and draw(st.booleans()):
            interface.add_supertype(
                names[draw(st.integers(min_value=0, max_value=index - 1))]
            )
        if interface.attributes and draw(st.booleans()):
            interface.add_key((next(iter(interface.attributes)),))
        schema.add_interface(interface)
    # Inverse-paired relationships between random types.
    link_count = draw(st.integers(min_value=0, max_value=type_count))
    for link in range(link_count):
        owner = names[draw(st.integers(min_value=0, max_value=type_count - 1))]
        target = names[draw(st.integers(min_value=0, max_value=type_count - 1))]
        path, inverse_path = f"r{link}_to", f"r{link}_from"
        to_many = draw(st.booleans())
        target_ref = set_of(target) if to_many else NamedType(target)
        schema.get(owner).add_relationship(
            RelationshipEnd(
                path, target_ref, target, inverse_path,
                RelationshipKind.ASSOCIATION,
            )
        )
        schema.get(target).add_relationship(
            RelationshipEnd(
                inverse_path, NamedType(owner), owner, path,
                RelationshipKind.ASSOCIATION,
            )
        )
    schema.validate()
    return schema


_specs = st.builds(
    WorkloadSpec,
    types=st.integers(min_value=3, max_value=15),
    attributes_per_type=st.integers(min_value=0, max_value=4),
    association_density=st.floats(min_value=0.0, max_value=1.5),
    isa_fraction=st.floats(min_value=0.0, max_value=0.8),
    part_of_chain=st.integers(min_value=0, max_value=4),
    instance_of_chain=st.integers(min_value=0, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
)


@_SLOW
@given(schemas())
def test_odl_round_trip(schema):
    reparsed = parse_schema(print_schema(schema), name=schema.name)
    assert schemas_equal(schema, reparsed)


@_SLOW
@given(_specs)
def test_odl_round_trip_on_workload_schemas(spec):
    schema = generate_schema(spec)
    reparsed = parse_schema(print_schema(schema), name=schema.name)
    assert schemas_equal(schema, reparsed)


@_SLOW
@given(schemas())
def test_decompose_reconstruct_identity(schema):
    assert schemas_equal(schema, reconstruct(decompose(schema)))


@_SLOW
@given(_specs)
def test_decompose_reconstruct_identity_on_workload_schemas(spec):
    schema = generate_schema(spec)
    assert schemas_equal(schema, reconstruct(decompose(schema)))


@_SLOW
@given(_specs, st.integers(min_value=0, max_value=1000))
def test_apply_then_undo_is_identity(spec, op_seed):
    schema = generate_schema(spec)
    operations = generate_operations(schema, 10, seed=op_seed)
    scratch = schema.copy("scratch")
    context = OperationContext(reference=schema)
    undo_stack = []
    for operation in operations:
        for step in expand(scratch, operation, context):
            undo_stack.append(step.apply(scratch, context))
    for undo in reversed(undo_stack):
        undo()
    assert schema_fingerprint(scratch) == schema_fingerprint(schema)


@_SLOW
@given(_specs, st.integers(min_value=0, max_value=1000))
def test_operation_language_round_trip(spec, op_seed):
    schema = generate_schema(spec)
    for operation in generate_operations(schema, 10, seed=op_seed):
        assert parse_operation(operation.to_text()) == operation


@_SLOW
@given(schemas())
def test_add_only_script_reaches_any_schema(schema):
    scratch = Schema("empty")
    context = OperationContext(reference=schema)
    for operation in add_only_script(schema):
        for step in expand(scratch, operation, context):
            step.apply(scratch, context)
    assert schemas_equal(scratch, schema)


@_SLOW
@given(schemas(), schemas())
def test_synthesis_reaches_target(source, target):
    # synthesize_operations verifies its own plan (verify=True) and
    # raises on failure; reaching here means the invariant held.
    synthesize_operations(source, target)


@_SLOW
@given(schemas())
def test_fingerprint_invariant_under_reordering(schema):
    names = schema.type_names()
    shuffled = Schema(schema.name)
    for name in reversed(names):
        shuffled.add_interface(schema.get(name).copy())
    assert schemas_equal(schema, shuffled)


@_SLOW
@given(_specs, st.integers(min_value=0, max_value=1000))
def test_persistence_round_trip(spec, op_seed):
    """Save/load reproduces the workspace exactly, for any op stream."""
    from repro.repository.persistence import (
        repository_from_dict,
        repository_to_dict,
    )
    from repro.repository.repository import SchemaRepository

    schema = generate_schema(spec)
    repository = SchemaRepository(schema.copy("shrink_wrap"))
    for operation in generate_operations(schema, 6, seed=op_seed):
        repository.apply(operation)
    restored = repository_from_dict(repository_to_dict(repository))
    assert schemas_equal(restored.workspace.schema, repository.workspace.schema)


@_SLOW
@given(st.text(max_size=60))
def test_operation_parser_never_crashes(text):
    """Arbitrary text is rejected with OdlSyntaxError, never a crash."""
    from repro.model.errors import InvalidModelError
    from repro.odl.lexer import OdlSyntaxError

    try:
        parse_operation(text)
    except (OdlSyntaxError, InvalidModelError):
        pass


@_SLOW
@given(st.text(max_size=120))
def test_odl_parser_never_crashes(text):
    """Arbitrary text never escapes the documented error types."""
    from repro.model.errors import SchemaError
    from repro.odl.lexer import OdlSyntaxError

    try:
        parse_schema(text, name="fuzz")
    except (OdlSyntaxError, SchemaError):
        pass


@_SLOW
@given(_specs, st.lists(st.sampled_from(["apply", "undo", "redo"]),
                        min_size=1, max_size=20),
       st.integers(min_value=0, max_value=1000))
def test_undo_redo_interleaving_never_corrupts(spec, actions, op_seed):
    """Any interleaving of apply/undo/redo leaves a valid workspace, and
    draining the undo stack restores the shrink wrap schema exactly."""
    from repro.repository.workspace import Workspace

    schema = generate_schema(spec)
    operations = iter(generate_operations(schema, 20, seed=op_seed))
    workspace = Workspace(schema)
    for action in actions:
        if action == "apply":
            operation = next(operations, None)
            if operation is not None:
                try:
                    workspace.apply(operation)
                except Exception:
                    pass  # stream ops can clash after undo/redo churn
        elif action == "undo":
            workspace.undo_last()
        else:
            workspace.redo()
        workspace.schema.validate()
    while workspace.undo_last() is not None:
        pass
    assert schemas_equal(workspace.schema, workspace.reference)


@_SLOW
@given(_specs)
def test_relational_translation_total(spec):
    """Every generated schema translates: >= one table per type, and
    every foreign key references an existing table."""
    from repro.translate.relational import to_relational

    schema = generate_schema(spec)
    relational = to_relational(schema)
    assert len(relational.tables) >= len(schema)
    names = set(relational.table_names())
    for table in relational.tables:
        for foreign_key in table.foreign_keys:
            assert foreign_key.referenced_table in names


@_SLOW
@given(_specs)
def test_er_translation_total(spec):
    """ER translation: one entity per type, each relationship pair once."""
    from repro.translate.er import to_er

    schema = generate_schema(spec)
    model = to_er(schema)
    assert len(model.entities) == len(schema)
    pairs = {
        frozenset({(o, e.name), (e.inverse_type, e.inverse_name)})
        for o, e in schema.relationship_pairs()
    }
    assert len(model.relationships) == len(pairs)


@_SLOW
@given(schemas(), st.data())
def test_local_name_display_stays_valid(schema, data):
    """Any consistent aliasing yields a structurally valid display schema."""
    from repro.repository.localnames import LocalNameMap, apply_local_names

    names = LocalNameMap()
    candidates = schema.type_names()
    if candidates:
        victim = data.draw(st.sampled_from(candidates))
        names.set_alias(victim, f"Local_{victim}", schema)
        interface = schema.get(victim)
        members = list(interface.attributes) + list(interface.relationships)
        if members:
            member = data.draw(st.sampled_from(members))
            names.set_alias(f"{victim}.{member}", f"local_{member}", schema)
    display = apply_local_names(schema, names)
    display.validate()
    assert len(display) == len(schema)
