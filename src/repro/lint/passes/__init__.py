"""Bundled contract passes; importing this package registers them all."""

from repro.lint.passes import (  # noqa: F401  -- registration side effects
    effects,
    independence,
    instance_impact,
    read_scopes,
    silent_writes,
    spine,
)

__all__ = [
    "effects",
    "independence",
    "instance_impact",
    "read_scopes",
    "silent_writes",
    "spine",
]
