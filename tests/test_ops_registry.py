"""Unit tests for the operation registry and the Table 1 matrix."""

import pytest

from repro.concepts.base import ConceptKind
from repro.ops.base import InadmissibleOperationError
from repro.ops.registry import (
    OPERATION_CLASSES,
    OPERATIONS_BY_NAME,
    admissible_operations,
    check_admissible,
    format_table1,
    is_admissible,
    operation_class,
    table1_matrix,
)
from repro.ops.attribute_ops import AddAttribute, ModifyAttribute
from repro.ops.type_ops import AddTypeDefinition
from repro.ops.type_property_ops import ModifySupertype
from repro.model.types import scalar


def _row(matrix, candidate, sub_candidate):
    for row in matrix:
        if (row["candidate"], row["sub_candidate"]) == (candidate, sub_candidate):
            return row
    raise AssertionError(f"no row for {candidate} / {sub_candidate}")


class TestRegistry:
    def test_grammar_has_37_operations(self):
        assert len(OPERATION_CLASSES) == 37

    def test_lookup_by_name(self):
        assert operation_class("add_attribute") is AddAttribute

    def test_unknown_name(self):
        with pytest.raises(InadmissibleOperationError):
            operation_class("rename_type")

    def test_names_are_unique(self):
        assert len(OPERATIONS_BY_NAME) == len(OPERATION_CLASSES)

    def test_every_class_declares_metadata(self):
        for cls in OPERATION_CLASSES:
            assert cls.op_name
            assert cls.candidate
            assert cls.action in ("add", "delete", "modify")
            assert cls.admissible_in


class TestAdmissibility:
    def test_type_definitions_everywhere(self):
        for kind in ConceptKind:
            assert is_admissible(AddTypeDefinition, kind)

    def test_supertype_ops_only_in_generalization(self):
        assert is_admissible(ModifySupertype, ConceptKind.GENERALIZATION)
        assert not is_admissible(ModifySupertype, ConceptKind.WAGON_WHEEL)

    def test_attribute_add_only_in_wagon_wheel(self):
        assert is_admissible(AddAttribute, ConceptKind.WAGON_WHEEL)
        assert not is_admissible(AddAttribute, ConceptKind.GENERALIZATION)

    def test_attribute_move_only_in_generalization(self):
        assert is_admissible(ModifyAttribute, ConceptKind.GENERALIZATION)
        assert not is_admissible(ModifyAttribute, ConceptKind.WAGON_WHEEL)

    def test_check_admissible_raises_with_allowed_kinds(self):
        operation = AddAttribute("A", scalar("long"), "x")
        with pytest.raises(InadmissibleOperationError) as info:
            check_admissible(operation, ConceptKind.AGGREGATION)
        assert "wagon wheel" in str(info.value)

    def test_admissible_operations_per_kind(self):
        wagon_wheel_ops = {
            c.op_name for c in admissible_operations(ConceptKind.WAGON_WHEEL)
        }
        assert "add_attribute" in wagon_wheel_ops
        assert "modify_supertype" not in wagon_wheel_ops
        aggregation_ops = {
            c.op_name for c in admissible_operations(ConceptKind.AGGREGATION)
        }
        assert aggregation_ops == {
            "add_type_definition", "delete_type_definition",
            "add_part_of_relationship", "delete_part_of_relationship",
            "modify_part_of_target_type", "modify_part_of_cardinality",
            "modify_part_of_order_by",
        }


class TestTable1:
    """The matrix reproduces the paper's Table 1 structure."""

    @pytest.fixture(scope="class")
    def matrix(self):
        return table1_matrix()

    def test_extent_ops_wagon_wheel_only(self, matrix):
        row = _row(matrix, "Type Properties", "Extent name")
        assert row["wagon_wheel"] == "ADM"
        assert row["generalization"] == ""

    def test_supertype_ops_generalization_only(self, matrix):
        row = _row(matrix, "Type Properties", "Supertype (ISA)")
        assert row["generalization"] == "ADM"
        assert row["wagon_wheel"] == ""

    def test_attribute_row(self, matrix):
        row = _row(matrix, "Attribute", "Name")
        assert row["wagon_wheel"] == "AD"
        assert row["generalization"] == "M"  # the move operation

    def test_relationship_target_type_row(self, matrix):
        row = _row(matrix, "Relationship", "Target type")
        assert row["generalization"] == "M"
        assert row["wagon_wheel"] == ""

    def test_part_of_rows(self, matrix):
        row = _row(matrix, "Part-of Relationship", "Traversal path name")
        assert row["wagon_wheel"] == "AD"
        assert row["aggregation"] == "AD"
        modify_row = _row(matrix, "Part-of Relationship", "One way cardinality")
        assert modify_row["aggregation"] == "M"
        assert modify_row["wagon_wheel"] == ""

    def test_instance_of_rows(self, matrix):
        row = _row(matrix, "Instance-of Relationship", "Traversal path name")
        assert row["instance_of"] == "AD"
        modify_row = _row(matrix, "Instance-of Relationship", "Target type")
        assert modify_row["instance_of"] == "M"

    def test_no_name_modifications_anywhere(self, matrix):
        """Table 1's caption: disallowed operations support name
        equivalence -- no concept schema offers a rename."""
        assert "rename" not in format_table1().lower()

    def test_type_name_row_everywhere(self, matrix):
        row = _row(matrix, "Interface Definition", "Type name")
        for kind in ConceptKind:
            assert row[kind.value] == "AD"

    def test_format_is_aligned_text(self):
        rendered = format_table1()
        assert "Wagon wheel" in rendered
        assert "Generalization" in rendered
        lines = rendered.splitlines()
        assert len(lines) > 20
