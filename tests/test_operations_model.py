"""Unit tests for operation signatures (repro.model.operations)."""

import pytest

from repro.model.errors import InvalidModelError
from repro.model.operations import Operation, Parameter
from repro.model.types import VOID, named, scalar


class TestParameter:
    def test_basic(self):
        parameter = Parameter("in", scalar("short"), "month")
        assert str(parameter) == "in short month"

    def test_out_and_inout(self):
        assert Parameter("out", scalar("long"), "x").direction == "out"
        assert Parameter("inout", scalar("long"), "x").direction == "inout"

    def test_bad_direction_rejected(self):
        with pytest.raises(InvalidModelError):
            Parameter("byref", scalar("long"), "x")

    def test_bad_name_rejected(self):
        with pytest.raises(InvalidModelError):
            Parameter("in", scalar("long"), "")

    def test_non_type_rejected(self):
        with pytest.raises(InvalidModelError):
            Parameter("in", "long", "x")  # type: ignore[arg-type]


class TestOperation:
    def test_niladic(self):
        operation = Operation("enrollment", scalar("short"))
        assert operation.signature() == "short enrollment()"

    def test_void_return(self):
        operation = Operation("reset", VOID)
        assert operation.signature() == "void reset()"

    def test_with_parameters_and_exceptions(self):
        operation = Operation(
            "salary", scalar("float"),
            (Parameter("in", scalar("short"), "month"),),
            ("NoSuchMonth",),
        )
        assert (
            operation.signature()
            == "float salary(in short month) raises (NoSuchMonth)"
        )

    def test_object_returning(self):
        operation = Operation("advisor", named("Faculty"))
        assert operation.signature() == "Faculty advisor()"

    def test_duplicate_parameter_names_rejected(self):
        params = (
            Parameter("in", scalar("short"), "x"),
            Parameter("in", scalar("long"), "x"),
        )
        with pytest.raises(InvalidModelError):
            Operation("f", VOID, params)

    def test_duplicate_exceptions_rejected(self):
        with pytest.raises(InvalidModelError):
            Operation("f", VOID, (), ("E", "E"))

    def test_list_arguments_coerced_to_tuples(self):
        operation = Operation("f", VOID, [], [])  # type: ignore[arg-type]
        assert operation.parameters == ()
        assert operation.exceptions == ()

    def test_with_return_type(self):
        operation = Operation("f", VOID)
        assert operation.with_return_type(scalar("long")).return_type == scalar(
            "long"
        )

    def test_with_parameters(self):
        operation = Operation("f", VOID)
        updated = operation.with_parameters(
            (Parameter("in", scalar("long"), "x"),)
        )
        assert len(updated.parameters) == 1
        assert operation.parameters == ()

    def test_with_exceptions(self):
        operation = Operation("f", VOID)
        assert operation.with_exceptions(("E",)).exceptions == ("E",)

    def test_bad_name_rejected(self):
        with pytest.raises(InvalidModelError):
            Operation("", VOID)
