"""The schema repository: "a knowledge base for the entire process".

Figure 1: "It holds the original shrink wrap schema used as the starting
point, the concept schemas (generated from the shrink wrap schema), the
workspace for the schema under design, the custom schema, and the
mapping from the original to the custom schema."
"""

from __future__ import annotations

from repro.analysis.diff import SchemaDiff, diff_schemas
from repro.concepts.base import ConceptSchema
from repro.concepts.decompose import Decomposition, decompose
from repro.knowledge.consistency import consistency_report
from repro.knowledge.feedback import Feedback
from repro.knowledge.impact import ImpactReport, impact_of
from repro.model.errors import SchemaError
from repro.model.schema import Schema
from repro.odl.parser import parse_schema
from repro.ops.base import SchemaOperation
from repro.repository.localnames import LocalNameMap, apply_local_names
from repro.repository.mapping import SchemaMapping, generate_mapping
from repro.repository.workspace import LogEntry, Workspace


class SchemaRepository:
    """All artifacts of one shrink-wrap-based design effort.

    The life cycle mirrors Figure 1:

    1. construct from the shrink wrap schema (concept schemas are
       generated immediately);
    2. customize through :meth:`apply` / :meth:`undo` against the
       workspace, one concept schema at a time;
    3. :meth:`generate_custom_schema` freezes the workspace into the
       custom schema and :meth:`generate_mapping` derives the
       original-to-custom correspondence;
    4. :meth:`consistency` and :meth:`impact` provide the designer
       feedback loop at any point.
    """

    def __init__(self, shrink_wrap: Schema, custom_name: str | None = None) -> None:
        shrink_wrap.validate()
        self.shrink_wrap = shrink_wrap
        self.decomposition: Decomposition = decompose(shrink_wrap)
        self.workspace = Workspace(shrink_wrap, custom_name)
        self.custom_schema: Schema | None = None
        self.mapping: SchemaMapping | None = None
        self.local_names = LocalNameMap()
        #: Registered wagon wheel views, with the workspace position at
        #: which each was created (so persistence can replay them
        #: interleaved with the operation log).
        self.view_records: list[dict] = []

    @classmethod
    def from_odl(
        cls, text: str, name: str = "shrink_wrap",
        custom_name: str | None = None,
    ) -> "SchemaRepository":
        """Build a repository from extended-ODL text."""
        return cls(parse_schema(text, name=name), custom_name)

    # ------------------------------------------------------------------
    # Concept schemas
    # ------------------------------------------------------------------

    def concept_schemas(self) -> list[ConceptSchema]:
        """Every concept schema of the shrink wrap decomposition."""
        return self.decomposition.all_concepts()

    def concept(self, identifier: str) -> ConceptSchema:
        """Look up one concept schema by identifier (e.g. ``ww:Course``)."""
        return self.decomposition.by_identifier(identifier)

    def create_wagon_wheel_view(
        self,
        focal: str,
        view_name: str,
        spoke_paths: tuple[str, ...] | None = None,
        attribute_names: tuple[str, ...] | None = None,
    ) -> ConceptSchema:
        """Register an additional point of view on one focal type.

        Section 3.3.1 allows several wagon wheels per object type; the
        view is extracted from the *current workspace* (it reflects any
        customization so far) and becomes addressable like any other
        concept schema, e.g. ``ww:Course_Offering#scheduling``.
        """
        from repro.concepts.wagon_wheel import extract_wagon_wheel_view

        concept = extract_wagon_wheel_view(
            self.workspace.schema, focal, view_name,
            spoke_paths, attribute_names,
        )
        self.decomposition.add_concept(concept)
        self.view_records.append(
            {
                "focal": focal,
                "view_name": view_name,
                "spoke_paths": list(spoke_paths) if spoke_paths is not None
                else None,
                "attribute_names": list(attribute_names)
                if attribute_names is not None else None,
                "position": len(self.workspace.log),
            }
        )
        return concept

    # ------------------------------------------------------------------
    # Customization
    # ------------------------------------------------------------------

    def apply(
        self,
        operation: SchemaOperation,
        concept_id: str | None = None,
        propagate: bool = True,
    ) -> LogEntry:
        """Apply one operation, optionally in a concept schema context."""
        concept = self.concept(concept_id) if concept_id else None
        entry = self.workspace.apply(operation, concept, propagate)
        self._invalidate_deliverables()
        return entry

    def apply_composite(
        self, composite, concept_id: str | None = None, propagate: bool = True
    ) -> list[LogEntry]:
        """Apply a composite (macro) operation; see Workspace.apply_composite."""
        concept = self.concept(concept_id) if concept_id else None
        entries = self.workspace.apply_composite(composite, concept, propagate)
        self._invalidate_deliverables()
        return entries

    def undo(self) -> LogEntry | None:
        """Undo the last applied operation (with its cascades)."""
        entry = self.workspace.undo_last()
        if entry is not None:
            self._invalidate_deliverables()
        return entry

    def impact(
        self, operation: SchemaOperation, concept_id: str | None = None
    ) -> ImpactReport:
        """Preview the impact of *operation* without applying it."""
        if concept_id:
            from repro.ops.registry import check_admissible

            check_admissible(operation, self.concept(concept_id).kind)
        return impact_of(
            self.workspace.schema, operation, self.workspace.context,
            self.decomposition,
        )

    def _invalidate_deliverables(self) -> None:
        self.custom_schema = None
        self.mapping = None

    # ------------------------------------------------------------------
    # Deliverables
    # ------------------------------------------------------------------

    def generate_custom_schema(self, name: str | None = None) -> Schema:
        """Freeze the workspace into the custom schema deliverable.

        The custom schema must pass structural validation -- Figure 1's
        "Generate custom schema" step is the gate at which the
        consistency rules are enforced.
        """
        custom = self.workspace.schema.copy(name or self.workspace.schema.name)
        custom.validate()
        self.custom_schema = custom
        return custom

    def generate_mapping(self) -> SchemaMapping:
        """Derive the original-to-custom mapping deliverable."""
        if self.custom_schema is None:
            self.generate_custom_schema()
        assert self.custom_schema is not None
        self.mapping = generate_mapping(self.shrink_wrap, self.custom_schema)
        return self.mapping

    def diff(self) -> SchemaDiff:
        """Construct-level diff of the current workspace vs. the original."""
        return diff_schemas(self.shrink_wrap, self.workspace.schema)

    def consistency(self) -> list[Feedback]:
        """The consistency report over the current workspace."""
        return consistency_report(self.workspace.schema, self.decomposition)

    def display_schema(self) -> Schema:
        """The workspace viewed through the local-name mapping.

        Canonical names keep identifying every construct internally (the
        paper's name-equivalence assumption); local names are a
        presentation layer maintained by the repository, exactly the
        extension Section 5 sketches.
        """
        return apply_local_names(self.workspace.schema, self.local_names)

    def customization_script(self) -> str:
        """The applied operations as an Appendix A language script."""
        return self.workspace.script()

    def summary(self) -> str:
        """One-paragraph status of the repository."""
        stats = self.workspace.schema.stats()
        return (
            f"repository for {self.shrink_wrap.name!r}: "
            f"{len(self.decomposition.all_concepts())} concept schemas, "
            f"{len(self.workspace.log)} customization step(s), workspace "
            f"has {stats['interfaces']} interfaces / "
            f"{stats['attributes']} attributes / "
            f"{stats['relationship_ends']} relationship ends"
        )


def require_custom_schema(repository: SchemaRepository) -> Schema:
    """Fetch the generated custom schema or fail clearly."""
    if repository.custom_schema is None:
        raise SchemaError(
            "no custom schema generated yet; call generate_custom_schema()"
        )
    return repository.custom_schema
