"""Unit tests for wagon wheel concept schemas."""

import pytest

from repro.concepts.base import ConceptKind
from repro.concepts.wagon_wheel import (
    extract_all_wagon_wheels,
    extract_wagon_wheel,
)
from repro.model.errors import UnknownTypeError
from repro.model.relationships import RelationshipKind


class TestExtraction:
    def test_figure3_course_offering(self, university):
        """The Figure 3 wagon wheel: Course Offering and its spokes."""
        wheel = extract_wagon_wheel(university, "Course_Offering")
        targets = {spoke.target_type for spoke in wheel.spokes}
        assert {"Syllabus", "Book", "Time_Slot", "Length", "Course"} <= targets

    def test_instance_of_spoke_present(self, university):
        wheel = extract_wagon_wheel(university, "Course_Offering")
        kinds = {
            spoke.target_type: spoke.kind for spoke in wheel.spokes
        }
        assert kinds["Course"] is RelationshipKind.INSTANCE_OF

    def test_focal_interface_is_cow_shared(self, university):
        # The wheel shares the live interface copy-on-write: the schema
        # mutating the focal type privatises the as-extracted state into
        # the wheel first, so the wheel never sees later edits.
        wheel = extract_wagon_wheel(university, "Course_Offering")
        assert wheel.focal_interface is university.get("Course_Offering")
        university.edit("Course_Offering").remove_attribute("room")
        assert wheel.focal_interface is not university.get("Course_Offering")
        assert "room" in wheel.focal_interface.attributes
        assert "room" not in university.get("Course_Offering").attributes

    def test_focal_interface_copy_is_independent(self, university):
        # Code that wants to mutate a wheel's interface takes a private
        # copy first (``extract_wagon_wheel_view`` does exactly this).
        wheel = extract_wagon_wheel(university, "Course_Offering")
        private = wheel.focal_interface.copy()
        private.remove_attribute("room")
        assert "room" in university.get("Course_Offering").attributes

    def test_members_are_distance_one(self, university):
        wheel = extract_wagon_wheel(university, "Course_Offering")
        # Department is two links away from Course_Offering: not a member.
        assert "Department" not in wheel.members
        assert "Course_Offering" in wheel.members

    def test_supertype_and_subtype_rims(self, university):
        wheel = extract_wagon_wheel(university, "Student")
        assert wheel.supertype_rim == ("Person",)
        assert set(wheel.subtype_rim) == {"Undergraduate", "Graduate"}

    def test_attribute_names(self, university):
        wheel = extract_wagon_wheel(university, "Course_Offering")
        assert "room" in wheel.attribute_names()

    def test_neighbour_types_excludes_focal(self, university):
        wheel = extract_wagon_wheel(university, "Student")
        assert "Student" not in wheel.neighbour_types()

    def test_unknown_focal_rejected(self, university):
        with pytest.raises(UnknownTypeError):
            extract_wagon_wheel(university, "Ghost")

    def test_kind_and_identifier(self, university):
        wheel = extract_wagon_wheel(university, "Course")
        assert wheel.kind is ConceptKind.WAGON_WHEEL
        assert wheel.identifier == "ww:Course"
        assert wheel.focal == "Course"

    def test_one_wheel_per_type(self, university):
        wheels = extract_all_wagon_wheels(university)
        assert len(wheels) == len(university)
        assert [w.focal for w in wheels] == university.type_names()

    def test_spoke_describe(self, university):
        wheel = extract_wagon_wheel(university, "Course_Offering")
        spoke = next(s for s in wheel.spokes if s.target_type == "Book")
        assert "Book" in spoke.describe()

    def test_project_returns_member_subschema(self, university):
        wheel = extract_wagon_wheel(university, "Course_Offering")
        projection = wheel.project(university)
        assert set(projection.type_names()) == set(wheel.members)
