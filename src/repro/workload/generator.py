"""Deterministic synthetic schema and operation workloads.

The paper reports no performance numbers; the scaling and throughput
benches characterise this implementation on generated shrink wrap
schemas.  Generation is seeded and fully deterministic so bench runs are
comparable.

:func:`generate_schema` builds a structurally valid schema with a
configurable mix of the extended model's features: generalization trees,
association webs with proper inverse pairs, part-of explosions, and
instance-of chains.  :func:`generate_operations` derives a stream of
valid modification operations against a schema (applying each to its
private copy so later operations remain valid).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.model.attributes import Attribute
from repro.model.interface import InterfaceDef
from repro.model.relationships import RelationshipKind
from repro.model.schema import Schema
from repro.model.types import NamedType, ScalarType, set_of
from repro.ops.attribute_ops import (
    AddAttribute,
    DeleteAttribute,
    ModifyAttributeSize,
)
from repro.ops.base import OperationContext, SchemaOperation
from repro.ops.composite import (
    CompositeOperation,
    ExtractSupertype,
    IntroduceAbstractSupertype,
    SplitBySubtyping,
)
from repro.ops.instance_of_ops import (
    AddInstanceOfRelationship,
    DeleteInstanceOfRelationship,
)
from repro.ops.operation_ops import AddOperation, DeleteOperation
from repro.ops.part_of_ops import (
    AddPartOfRelationship,
    DeletePartOfRelationship,
)
from repro.ops.relationship_ops import AddRelationship, DeleteRelationship
from repro.ops.type_ops import AddTypeDefinition, DeleteTypeDefinition
from repro.ops.type_property_ops import (
    AddExtentName,
    AddKeyList,
    AddSupertype,
    DeleteExtentName,
    DeleteKeyList,
    DeleteSupertype,
    ModifyExtentName,
)
from repro.knowledge.propagation import expand

_SCALARS = (
    ScalarType("short"),
    ScalarType("long"),
    ScalarType("float"),
    ScalarType("boolean"),
    ScalarType("date"),
    ScalarType("string", 20),
    ScalarType("string", 60),
)


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """Size and shape parameters of a generated schema."""

    types: int = 20
    attributes_per_type: int = 4
    operations_per_type: int = 1
    association_density: float = 0.8  # associations per type, on average
    isa_fraction: float = 0.3  # fraction of types placed under a parent
    part_of_chain: int = 4  # length of the generated parts explosion
    instance_of_chain: int = 3  # length of the generated version chain
    isa_chain: int = 0  # depth of one dedicated supertype chain
    hub_fanout: int = 0  # spokes of one wide wagon-wheel hub type
    seed: int = 0


def generate_schema(spec: WorkloadSpec, name: str | None = None) -> Schema:
    """Build a deterministic, structurally valid schema from *spec*."""
    rng = random.Random(spec.seed)
    schema = Schema(name or f"synthetic_{spec.types}_{spec.seed}")

    type_names = [f"Type{i:03d}" for i in range(spec.types)]
    for type_name in type_names:
        interface = InterfaceDef(type_name)
        interface.set_extent(f"{type_name.lower()}_extent")
        for attr_index in range(spec.attributes_per_type):
            interface.add_attribute(
                Attribute(f"attr{attr_index}", rng.choice(_SCALARS))
            )
        if interface.attributes:
            interface.add_key((next(iter(interface.attributes)),))
        for op_index in range(spec.operations_per_type):
            interface.add_operation(
                _make_operation(f"op{op_index}", rng)
            )
        schema.add_interface(interface)

    _wire_isa_chain(schema, type_names, spec)
    _wire_generalization(schema, type_names, spec, rng)
    _wire_hub_fanout(schema, type_names, spec)
    _wire_associations(schema, type_names, spec, rng)
    _wire_part_of_chain(schema, type_names, spec)
    _wire_instance_of_chain(schema, type_names, spec)
    schema.validate()
    return schema


def _make_operation(op_name: str, rng: random.Random):
    from repro.model.operations import Operation, Parameter

    parameters = tuple(
        Parameter("in", rng.choice(_SCALARS), f"p{i}")
        for i in range(rng.randint(0, 2))
    )
    return Operation(op_name, rng.choice(_SCALARS), parameters)


def _wire_isa_chain(schema, type_names, spec) -> None:
    """One deep supertype chain across the first ``isa_chain`` types.

    Models the degenerate-depth hierarchies that exposed the recursive
    ancestry/cycle walks (they overflowed the interpreter stack beyond
    ~1 000 levels); the large-schema fuzz profile and the deep-chain
    regression tests generate through this.
    """
    chain = type_names[: max(0, min(spec.isa_chain, len(type_names)))]
    for parent, child in zip(chain, chain[1:]):
        schema.get(child).add_supertype(parent)


def _wire_generalization(schema, type_names, spec, rng) -> None:
    """Attach a fraction of types under earlier types (guaranteed acyclic)."""
    for index, type_name in enumerate(type_names[1:], start=1):
        if rng.random() < spec.isa_fraction:
            parent = type_names[rng.randrange(0, index)]
            interface = schema.get(type_name)
            if parent not in interface.supertypes:
                interface.add_supertype(parent)


def _wire_hub_fanout(schema, type_names, spec) -> None:
    """One wide wagon-wheel hub: the first type linked to the next N.

    Stresses the fan-out shape of Figure 3's wagon wheel at scale -- a
    single interface owning hundreds of association ends, each with its
    inverse on a distinct rim type.
    """
    if spec.hub_fanout <= 0 or len(type_names) < 2:
        return
    hub_name = type_names[0]
    hub = schema.get(hub_name)
    for spoke, target_name in enumerate(
        type_names[1 : spec.hub_fanout + 1]
    ):
        path = f"spoke{spoke}_to"
        inverse_path = f"spoke{spoke}_from"
        hub.add_relationship(
            _end(path, set_of(target_name), target_name, inverse_path)
        )
        schema.get(target_name).add_relationship(
            _end(inverse_path, NamedType(hub_name), hub_name, path)
        )


def _wire_associations(schema, type_names, spec, rng) -> None:
    """Create inverse-paired association ends between random types."""
    count = int(len(type_names) * spec.association_density)
    for link_index in range(count):
        owner_name = rng.choice(type_names)
        target_name = rng.choice(type_names)
        owner = schema.get(owner_name)
        target = schema.get(target_name)
        path = f"rel{link_index}_to"
        inverse_path = f"rel{link_index}_from"
        if (
            path in owner.attributes or path in owner.relationships
            or inverse_path in target.attributes
            or inverse_path in target.relationships
        ):
            continue
        to_many = rng.random() < 0.5
        owner_target = set_of(target_name) if to_many else NamedType(target_name)
        owner.add_relationship(
            _end(path, owner_target, target_name, inverse_path)
        )
        target.add_relationship(
            _end(inverse_path, NamedType(owner_name), owner_name, path)
        )


def _end(name, target, inverse_type, inverse_name,
         kind=RelationshipKind.ASSOCIATION):
    from repro.model.relationships import RelationshipEnd

    return RelationshipEnd(name, target, inverse_type, inverse_name, kind)


def _wire_part_of_chain(schema, type_names, spec) -> None:
    """A parts explosion across the first ``part_of_chain`` types."""
    chain = type_names[: max(0, min(spec.part_of_chain, len(type_names)))]
    for whole_name, part_name in zip(chain, chain[1:]):
        schema.get(whole_name).add_relationship(
            _end(
                "has_parts", set_of(part_name), part_name, "part_of_whole",
                RelationshipKind.PART_OF,
            )
        )
        schema.get(part_name).add_relationship(
            _end(
                "part_of_whole", NamedType(whole_name), whole_name, "has_parts",
                RelationshipKind.PART_OF,
            )
        )


def _wire_instance_of_chain(schema, type_names, spec) -> None:
    """A version chain across the last ``instance_of_chain`` types."""
    if spec.instance_of_chain <= 1:
        return
    chain = type_names[-spec.instance_of_chain:]
    for generic_name, instance_name in zip(chain, chain[1:]):
        schema.get(generic_name).add_relationship(
            _end(
                "instances", set_of(instance_name), instance_name, "generic",
                RelationshipKind.INSTANCE_OF,
            )
        )
        schema.get(instance_name).add_relationship(
            _end(
                "generic", NamedType(generic_name), generic_name, "instances",
                RelationshipKind.INSTANCE_OF,
            )
        )


def generate_operations(
    schema: Schema, count: int, seed: int = 0
) -> list[SchemaOperation]:
    """Derive *count* valid operations against (an evolving copy of) *schema*.

    Each generated operation is applied -- with propagation -- to a
    private scratch copy so that subsequent operations stay valid; the
    returned list therefore replays cleanly against a fresh copy of
    *schema* in a workspace with propagation enabled.

    The stream covers the whole Appendix A language: attribute,
    relationship, type, operation, part-of, instance-of, and
    type-property operations, plus composites (which contribute their
    expanded primitive plans, so the returned list stays a list of
    primitive operations).
    """
    rng = random.Random(seed)
    # A CoW fork, not an eager copy: only the types the generated stream
    # actually touches materialise, so generation cost tracks *count*
    # rather than schema size (the dominant cost at 100k types).
    scratch = schema.fork("workload_scratch")
    try:
        context = OperationContext(reference=schema)
        operations: list[SchemaOperation] = []
        attempts = 0
        while len(operations) < count and attempts < count * 50:
            attempts += 1
            if rng.random() < _COMPOSITE_SHARE:
                composite = random_composite(scratch, rng, len(operations))
                if composite is None:
                    continue
                try:
                    plan = composite.expand_plan(scratch, context)
                    applied: list[SchemaOperation] = []
                    for operation in plan:
                        for step in expand(scratch, operation, context):
                            step.apply(scratch, context)
                        applied.append(operation)
                except Exception:
                    continue
                operations.extend(applied)
                continue
            operation = random_operation(scratch, rng, len(operations))
            if operation is None:
                continue
            try:
                for step in expand(scratch, operation, context):
                    step.apply(scratch, context)
            except Exception:
                continue
            operations.append(operation)
        if len(operations) < count:
            raise RuntimeError(
                f"could only generate {len(operations)} of {count} operations"
            )
        del operations[count:]
        return operations
    finally:
        scratch.release_cow()


#: Fraction of generation draws that attempt a composite operation.
_COMPOSITE_SHARE = 0.04


def random_operation(
    schema: Schema, rng: random.Random, index: int
) -> SchemaOperation | None:
    """One randomly chosen candidate operation against *schema*.

    The operation is built from the current state of *schema* but not
    applied; it may still fail validation (e.g. a part-of edge that
    would close a cycle) -- callers decide whether to skip or to treat
    the rejection itself as part of the workload.  ``None`` means the
    chosen operation family has no candidate in this schema (e.g. no
    relationship left to delete).  Deterministic for a given *rng*
    state, *schema*, and *index*.
    """
    maker = rng.choice(_PRIMITIVE_MAKERS)
    return maker(schema, rng, index)


def random_composite(
    schema: Schema, rng: random.Random, index: int
) -> CompositeOperation | None:
    """One randomly chosen composite operation against *schema*."""
    maker = rng.choice(_COMPOSITE_MAKERS)
    return maker(schema, rng, index)


def _random_type(scratch: Schema, rng: random.Random) -> str | None:
    names = scratch.type_names()
    return rng.choice(names) if names else None


def _make_add_attribute(scratch, rng, index):
    owner = _random_type(scratch, rng)
    if owner is None:
        return None
    return AddAttribute(owner, rng.choice(_SCALARS), f"gen_attr{index}")


def _make_delete_attribute(scratch, rng, index):
    owner = _random_type(scratch, rng)
    if owner is None:
        return None
    attrs = list(scratch.get(owner).attributes)
    if not attrs:
        return None
    return DeleteAttribute(owner, rng.choice(attrs))


def _make_resize_attribute(scratch, rng, index):
    owner = _random_type(scratch, rng)
    if owner is None:
        return None
    sized = [
        a for a in scratch.get(owner).attributes.values()
        if isinstance(a.type, ScalarType) and a.type.size is not None
    ]
    if not sized:
        return None
    attribute = rng.choice(sized)
    return ModifyAttributeSize(
        owner, attribute.name, attribute.size, attribute.size + 10
    )


def _make_add_type(scratch, rng, index):
    return AddTypeDefinition(f"GenType{index:04d}")


def _make_delete_type(scratch, rng, index):
    # Deleting types keeps the workload from growing without bound; the
    # cascade is exercised as part of the stream.
    name = _random_type(scratch, rng)
    if name is None or len(scratch) < 5:
        return None
    return DeleteTypeDefinition(name)


def _make_add_relationship(scratch, rng, index):
    owner = _random_type(scratch, rng)
    target = _random_type(scratch, rng)
    if owner is None or target is None:
        return None
    return AddRelationship(
        owner, set_of(target), f"gen_rel{index}_to", target, f"gen_rel{index}_from"
    )


def _make_delete_relationship(scratch, rng, index):
    owner = _random_type(scratch, rng)
    if owner is None:
        return None
    ends = [
        end for end in scratch.get(owner).relationships.values()
        if end.kind is RelationshipKind.ASSOCIATION
    ]
    if not ends:
        return None
    return DeleteRelationship(owner, rng.choice(ends).name)


def _make_add_operation(scratch, rng, index):
    owner = _random_type(scratch, rng)
    if owner is None:
        return None
    return AddOperation(owner, rng.choice(_SCALARS), f"gen_op{index}")


def _make_delete_operation(scratch, rng, index):
    owner = _random_type(scratch, rng)
    if owner is None:
        return None
    names = list(scratch.get(owner).operations)
    if not names:
        return None
    return DeleteOperation(owner, rng.choice(names))


# ----------------------------------------------------------------------
# Part-of / instance-of operations
# ----------------------------------------------------------------------


def _make_add_part_of(scratch, rng, index):
    whole = _random_type(scratch, rng)
    part = _random_type(scratch, rng)
    if whole is None or part is None or whole == part:
        return None
    return AddPartOfRelationship(
        whole, set_of(part), f"gen_part{index}_to", part, f"gen_part{index}_from"
    )


def _make_delete_part_of(scratch, rng, index):
    edges = scratch.part_of_edges()
    if not edges:
        return None
    whole, _, end = edges[rng.randrange(len(edges))]
    return DeletePartOfRelationship(whole, end.name)


def _make_add_instance_of(scratch, rng, index):
    generic = _random_type(scratch, rng)
    instance = _random_type(scratch, rng)
    if generic is None or instance is None or generic == instance:
        return None
    return AddInstanceOfRelationship(
        generic, set_of(instance), f"gen_inst{index}_to",
        instance, f"gen_inst{index}_from",
    )


def _make_delete_instance_of(scratch, rng, index):
    edges = scratch.instance_of_edges()
    if not edges:
        return None
    generic, _, end = edges[rng.randrange(len(edges))]
    return DeleteInstanceOfRelationship(generic, end.name)


# ----------------------------------------------------------------------
# Type-property operations (supertypes, extents, keys)
# ----------------------------------------------------------------------


def _make_add_supertype(scratch, rng, index):
    subtype = _random_type(scratch, rng)
    supertype = _random_type(scratch, rng)
    if subtype is None or supertype is None or subtype == supertype:
        return None
    return AddSupertype(subtype, supertype)


def _make_delete_supertype(scratch, rng, index):
    candidates = [
        interface.name for interface in scratch if interface.supertypes
    ]
    if not candidates:
        return None
    name = rng.choice(candidates)
    return DeleteSupertype(name, rng.choice(scratch.get(name).supertypes))


def _make_add_extent(scratch, rng, index):
    candidates = [
        interface.name for interface in scratch if interface.extent is None
    ]
    if not candidates:
        return None
    return AddExtentName(rng.choice(candidates), f"gen_extent{index}")


def _make_modify_extent(scratch, rng, index):
    candidates = [
        interface for interface in scratch if interface.extent is not None
    ]
    if not candidates:
        return None
    interface = candidates[rng.randrange(len(candidates))]
    return ModifyExtentName(
        interface.name, interface.extent, f"gen_extent{index}"
    )


def _make_delete_extent(scratch, rng, index):
    candidates = [
        interface for interface in scratch if interface.extent is not None
    ]
    if not candidates:
        return None
    interface = candidates[rng.randrange(len(candidates))]
    return DeleteExtentName(interface.name, interface.extent)


def _make_add_key(scratch, rng, index):
    owner = _random_type(scratch, rng)
    if owner is None:
        return None
    available = sorted(
        set(scratch.get(owner).attributes)
        | set(scratch.inherited_attributes(owner))
    )
    if not available:
        return None
    return AddKeyList(owner, (rng.choice(available),))


def _make_delete_key(scratch, rng, index):
    candidates = [interface for interface in scratch if interface.keys]
    if not candidates:
        return None
    interface = candidates[rng.randrange(len(candidates))]
    return DeleteKeyList(
        interface.name, tuple(interface.keys[rng.randrange(len(interface.keys))])
    )


# ----------------------------------------------------------------------
# Composite operations (macros expanding to primitive plans)
# ----------------------------------------------------------------------


def _make_introduce_abstract_supertype(scratch, rng, index):
    names = scratch.type_names()
    if len(names) < 2:
        return None
    subtypes = tuple(rng.sample(names, 2))
    return IntroduceAbstractSupertype(
        f"GenSuper{index:04d}", subtypes, lift_common=rng.random() < 0.5
    )


def _make_extract_supertype(scratch, rng, index):
    candidates = [
        interface.name
        for interface in scratch
        if interface.attributes and scratch.ancestors(interface.name)
    ]
    if not candidates:
        return None
    source = rng.choice(candidates)
    supertype = rng.choice(sorted(scratch.ancestors(source)))
    attribute = rng.choice(list(scratch.get(source).attributes))
    return ExtractSupertype(source, supertype, (attribute,))


def _make_split_by_subtyping(scratch, rng, index):
    candidates = [
        interface.name for interface in scratch if interface.attributes
    ]
    if not candidates:
        return None
    source = rng.choice(candidates)
    attribute = rng.choice(list(scratch.get(source).attributes))
    return SplitBySubtyping(source, f"GenSub{index:04d}", (attribute,))


#: Every primitive operation family the generator can draw from.
_PRIMITIVE_MAKERS = (
    _make_add_attribute,
    _make_delete_attribute,
    _make_resize_attribute,
    _make_add_type,
    _make_add_relationship,
    _make_delete_relationship,
    _make_add_operation,
    _make_delete_operation,
    _make_delete_type,
    _make_add_part_of,
    _make_delete_part_of,
    _make_add_instance_of,
    _make_delete_instance_of,
    _make_add_supertype,
    _make_delete_supertype,
    _make_add_extent,
    _make_modify_extent,
    _make_delete_extent,
    _make_add_key,
    _make_delete_key,
)

#: Composite (macro) operation families.
_COMPOSITE_MAKERS = (
    _make_introduce_abstract_supertype,
    _make_extract_supertype,
    _make_split_by_subtyping,
)
