"""Significant examples: witness and near-miss populations per constraint.

Following Proper's "Generating Significant Examples for Conceptual
Schema Validation", each instance-level constraint of a schema is
illustrated by a *pair* of minimal populations: a **witness** the
constraint admits and a **near-miss** it rejects.  Showing both is the
strongest feedback a designer can get about what a schema (or a pending
modification) actually means.

The generator (:func:`~repro.examples.generator.significant_examples`)
is best-effort: every pair it emits is verified against
:func:`~repro.instances.check.check_population` -- the witness checks
clean and the near-miss provokes the pair's constraint kind -- and
sites it cannot instantiate (e.g. an interface whose key attributes are
not scalar-fillable) are silently skipped.  ``check_population`` is the
specification; the generator only samples it.

``python -m repro.examples <catalog-schema>`` prints the pairs;
:func:`~repro.examples.preview.preview_plan` diffs them across a
pending plan for designer feedback.
"""

from repro.examples.generator import (
    CONSTRAINT_KINDS,
    ExamplePair,
    significant_examples,
)
from repro.examples.preview import PlanPreview, preview_plan

__all__ = [
    "CONSTRAINT_KINDS",
    "ExamplePair",
    "PlanPreview",
    "preview_plan",
    "significant_examples",
]
