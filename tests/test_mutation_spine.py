"""Unit tests for the mutation spine (MutationLog / records / subscribers).

The spine is the single change-truth channel behind the index, the
validation cache, and the fingerprint memos; these tests pin down its
stream semantics (dense seqs, synchronous subscribers), replayability,
the seq-stamped memo, journal folding, and the Aspect vocabulary.
"""

import pytest

from repro.model.attributes import Attribute
from repro.model.errors import UnknownPropertyError
from repro.model.fingerprint import (
    memoized_schema_fingerprint,
    schema_fingerprint,
    schemas_equal,
)
from repro.model.interface import InterfaceDef
from repro.model.mutation import (
    ALL_ASPECTS,
    Aspect,
    DirtyJournal,
    MutationLog,
    aspect_for_kind,
    touched_names_between,
)
from repro.model.relationships import RelationshipKind
from repro.model.schema import Schema
from repro.model.types import scalar


class TestAspect:
    def test_members_compare_like_legacy_strings(self):
        assert Aspect.ISA == "isa"
        assert Aspect.ATTRS == "attrs"
        assert Aspect.REL_PART_OF == "rel-part-of"
        assert Aspect.MEMBERSHIP == "membership"

    def test_members_hash_like_legacy_strings(self):
        scopes = {Aspect.KEYS: 1}
        assert scopes["keys"] == 1
        assert "keys" in scopes

    def test_all_aspects_excludes_membership(self):
        assert Aspect.MEMBERSHIP not in ALL_ASPECTS
        assert Aspect.ISA in ALL_ASPECTS
        assert len(ALL_ASPECTS) == len(Aspect) - 1

    def test_aspect_for_kind_covers_every_relationship_kind(self):
        for kind in RelationshipKind:
            assert aspect_for_kind(kind) in ALL_ASPECTS


class TestStream:
    def test_every_mutator_lands_one_record(self, small):
        before = small.log.seq
        person = small.get("Person")
        person.add_attribute(Attribute("dob", scalar("date")))
        person.remove_attribute("dob")
        person.set_extent("persons")
        assert small.log.seq == before + 3
        kinds = [r.kind for r in small.log.records[-3:]]
        assert kinds == ["add_attribute", "remove_attribute", "set_extent"]

    def test_seqs_are_dense(self, small):
        small.get("Person").set_extent("persons")
        seqs = [record.seq for record in small.log.records]
        assert seqs == list(range(1, small.log.seq + 1))
        assert len(small.log) == small.log.seq

    def test_generation_is_spine_seq(self, small):
        assert small.generation == small.log.seq
        small.get("Person").set_extent("persons")
        assert small.generation == small.log.seq

    def test_construction_emits_add_interface_records(self, small):
        adds = [r for r in small.log.records if r.kind == "add_interface"]
        assert [r.interface for r in adds] == list(small.interfaces)

    def test_subscribers_notified_synchronously(self, small):
        seen = []
        small.log.subscribe(seen.append)
        small.get("Person").add_key(("name",))
        assert [r.kind for r in seen] == ["add_key"]
        assert seen[0].interface == "Person"
        assert seen[0].aspects == frozenset({Aspect.KEYS})

    def test_detached_interface_stops_emitting(self, small):
        removed = small.interfaces["Employee"]
        small.remove_interface("Employee")
        before = small.log.seq
        removed.set_extent("ghosts")
        assert small.log.seq == before

    def test_records_since_is_the_suffix(self, small):
        mark = small.log.seq
        small.get("Person").set_extent("persons")
        small.get("Department").add_key(("code", "code"))
        suffix = small.log.records_since(mark)
        assert [r.kind for r in suffix] == ["set_extent", "add_key"]
        assert small.log.records_since(small.log.seq) == []


class TestReplay:
    def test_replay_reproduces_seed_schema(self, small):
        rebuilt = small.log.replay("rebuilt")
        assert schemas_equal(rebuilt, small)

    def test_replay_reproduces_mutated_schema(self, small):
        person = small.get("Person")
        person.add_attribute(Attribute("dob", scalar("date")))
        person.add_supertype("Department")
        person.remove_supertype("Department")
        person.insert_key(("name",), 0)
        person.replace_key_at(0, ("id", "name"))
        person.reorder_attributes(["name", "id", "dob"])
        small.remove_interface("Employee")
        small.reorder_interfaces(["Department", "Person"])
        rebuilt = small.log.replay()
        assert schema_fingerprint(rebuilt) == schema_fingerprint(small)
        assert rebuilt.type_names() == small.type_names()

    def test_replay_payload_isolated_from_later_mutations(self, small):
        """add_interface payloads are copies: later edits don't leak in."""
        fingerprint = schema_fingerprint(small)
        small.get("Person").add_attribute(Attribute("dob", scalar("date")))
        adds = [r for r in small.log.records if r.interface == "Person"]
        assert "dob" not in adds[0].payload["interface"].attributes
        rebuilt = small.log.replay()
        assert schema_fingerprint(rebuilt) == schema_fingerprint(small)

    def test_touch_makes_log_lossy(self, small):
        assert small.log.replayable
        small.touch()
        assert small.log.lossy
        with pytest.raises(ValueError):
            small.log.replay()

    def test_touch_order_is_replayable(self, small):
        small.touch_order()
        assert small.log.replayable
        rebuilt = small.log.replay()
        assert rebuilt.type_names() == small.type_names()


class TestMemo:
    def test_memo_caches_until_next_emit(self):
        log = MutationLog()
        calls = []

        def build():
            calls.append(1)
            return "value"

        assert log.memo("k", build) == "value"
        assert log.memo("k", build) == "value"
        assert len(calls) == 1
        log.emit("touch")
        assert log.memo("k", build) == "value"
        assert len(calls) == 2

    def test_fingerprint_memo_rides_the_spine(self, small):
        first = memoized_schema_fingerprint(small)
        assert memoized_schema_fingerprint(small) is first
        small.get("Person").set_extent("persons")
        second = memoized_schema_fingerprint(small)
        assert second is not first


class TestDirtyJournal:
    def fold(self, schema):
        journal = DirtyJournal()
        schema.log.subscribe(journal.observe)
        return journal

    def test_interface_mutation_touches_name_and_aspect(self, small):
        journal = self.fold(small)
        small.get("Person").add_key(("name",))
        assert journal.touched == {"Person": {Aspect.KEYS}}
        assert not journal.added and not journal.removed

    def test_membership_folds_into_added_removed(self, small):
        journal = self.fold(small)
        small.add_interface(InterfaceDef("Project"))
        small.remove_interface("Project")
        assert journal.added == {"Project"}
        assert journal.removed == {"Project"}

    def test_reorder_and_touch_fold(self, small):
        journal = self.fold(small)
        small.touch_order()
        assert journal.order_changed
        small.touch()
        assert journal.full

    def test_scope_record_splits_membership_by_presence(self, small):
        journal = self.fold(small)
        small.note_validation_scope(
            ("Person", "Ghost"),
            frozenset({Aspect.MEMBERSHIP, Aspect.ATTRS}),
        )
        assert journal.added == {"Person"}
        assert journal.removed == {"Ghost"}
        assert journal.touched["Person"] == {Aspect.ATTRS}
        assert journal.touched["Ghost"] == {Aspect.ATTRS}

    def test_schema_journal_cleared_by_validation(self, small):
        small.get("Person").set_extent("persons")
        assert small.journal.touched
        small.validation.validate()
        assert not small.journal.touched
        assert not small.journal.full


class TestTouchedNamesBetween:
    def test_unrelated_schemas_have_no_lineage(self, small, company):
        assert touched_names_between(small, company) is None

    def test_fork_divergence_names(self, small):
        branch = small.fork("branch")
        branch.get("Person").set_extent("persons")
        small.get("Department").add_key(("code", "code"))
        touched = touched_names_between(small, branch)
        assert touched == {"Person", "Department"}

    def test_lossy_segment_aborts(self, small):
        branch = small.fork("branch")
        branch.touch()
        assert touched_names_between(small, branch) is None

    def test_touch_outside_divergence_is_ignored(self, small):
        small.touch()  # lands *before* the fork point
        branch = small.fork("branch")
        branch.get("Person").set_extent("persons")
        assert touched_names_between(small, branch) == {"Person"}


class TestSchemaFork:
    def test_fork_is_isolated(self, small):
        branch = small.fork("branch")
        branch.get("Person").add_attribute(Attribute("dob", scalar("date")))
        assert "dob" not in small.get("Person").attributes
        small.get("Person").set_extent("persons")
        assert branch.get("Person").extent != "persons"

    def test_fork_records_lineage(self, small):
        branch = small.fork("branch")
        assert branch.log.origin is small.log
        assert branch.log.origin_seq == small.log.seq
        assert branch.log.base_seq == branch.log.seq

    def test_fork_equals_original(self, small):
        branch = small.fork("branch")
        assert schemas_equal(branch, small)


class TestStats:
    def test_namespaced_keys_present(self, small):
        small.validation.validate()
        stats = small.stats()
        assert stats["spine.seq"] == small.log.seq
        assert stats["spine.records"] == len(small.log)
        assert stats["spine.lossy"] == 0
        assert "index.rebuilds" in stats
        assert "validation.full" in stats

    def test_legacy_aliases_match_namespaced(self, small):
        small.validation.validate()
        stats = small.stats()
        assert stats["index_hits"] == stats["index.hits"]
        assert stats["index_misses"] == stats["index.misses"]
        assert stats["validation_full"] == stats["validation.full"]
        assert stats["validation_incremental"] == stats[
            "validation.incremental"
        ]

    def test_insert_and_replace_key_error_paths(self, small):
        person = small.get("Person")
        with pytest.raises(UnknownPropertyError):
            person.replace_key_at(5, ("id",))
        person.insert_key(("name",), 99)  # clamps like list.insert
        assert person.keys[-1] == ("name",)
