"""Interoperation through common objects (the Section 5 application).

"Systems built from the same shrink wrap schema (i.e., common objects)
can be integrated for information interchange because the semantically
identical constructs have already been identified."

Two teams customize the same business-objects shrink wrap schema -- a
storefront drops invoicing, a warehouse drops the catalogue -- and the
mappings identify the common objects the two systems interchange.  Each
custom schema is finally exported to SQL DDL and an ER model, the
translations Section 5 says keep the approach DBMS-independent.

Run with::

    python examples/business_interoperation.py
"""

from repro.catalog import business_schema
from repro.ops import parse_script
from repro.repository import SchemaRepository
from repro.translate import to_er_text, to_sql

STOREFRONT_SCRIPT = """
delete_type_definition(Invoice)
add_attribute(Customer, string(40), email)
add_attribute(Order, string(20), payment_token)
"""

WAREHOUSE_SCRIPT = """
delete_type_definition(Catalogue_Item)
add_attribute(Product, long, stock_level)
add_type_definition(Bin_Location)
add_attribute(Bin_Location, string(10), aisle)
add_relationship(Product, Bin_Location, stored_at, Bin_Location::stores)
"""


def customize(script: str, name: str) -> SchemaRepository:
    repository = SchemaRepository(business_schema(), custom_name=name)
    for operation in parse_script(script):
        repository.apply(operation)
    repository.generate_custom_schema()
    repository.generate_mapping()
    return repository


def main() -> None:
    storefront = customize(STOREFRONT_SCRIPT, "storefront")
    warehouse = customize(WAREHOUSE_SCRIPT, "warehouse")

    print("=== two customizations of one shrink wrap schema ===")
    for repository in (storefront, warehouse):
        assert repository.mapping is not None
        print(
            f"  {repository.workspace.schema.name}: "
            f"{len(repository.workspace.log)} operations, reuse ratio "
            f"{repository.mapping.reuse_ratio():.2f}"
        )

    print()
    print("=== common objects the two systems interchange ===")
    first = {e.path for e in storefront.mapping.corresponding()}
    second = {e.path for e in warehouse.mapping.corresponding()}
    shared = sorted(first & second)
    print(f"  {len(shared)} semantically identical constructs, e.g.:")
    for path in shared[:10]:
        print(f"    {path}")

    print()
    print("=== the storefront schema, exported to SQL ===")
    sql = to_sql(storefront.custom_schema)
    print("\n".join(sql.splitlines()[:28]))
    print("  ...")

    print()
    print("=== the warehouse schema, exported to ER ===")
    er = to_er_text(warehouse.custom_schema)
    print("\n".join(er.splitlines()[:20]))
    print("  ...")


if __name__ == "__main__":
    main()
