"""Construct-level diff between two schemas.

The diff is the machine behind the repository's *mapping* deliverable:
"a mapping representation that records the semantic correspondence
between the shrink wrap and customized schema" (Section 5, activity 10).
Under the paper's name-equivalence and stability assumptions the
correspondence is computable purely structurally:

* a construct present in both schemas under the same name corresponds to
  itself -- ``UNCHANGED`` when identical, ``MODIFIED`` otherwise;
* an attribute / relationship end / operation that disappeared from one
  type but appears under the same name in a generalization relative is
  the *same* construct after a move -- ``MOVED`` (semantic stability
  guarantees moves only happen along ISA paths);
* anything else present only in the original is ``DELETED``, and present
  only in the custom schema is ``ADDED``.

Two entry points share these rules.  :func:`diff_schemas` is the
reference: a full structural walk over both schemas.
:func:`schema_diff` answers the same question from the mutation spine:
when the two schemas share log lineage (one was forked from the other,
or both from a common ancestor), only the interfaces named by the
divergence suffixes of their logs can differ, so the walk is restricted
to those -- O(changed) instead of O(schema) -- and falls back to the
full walk when no lineage exists or a log is lossy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from repro.model.interface import InterfaceDef
from repro.model.mutation import touched_names_between
from repro.model.schema import Schema


class ChangeStatus(enum.Enum):
    """Correspondence status of one construct."""

    UNCHANGED = "unchanged"
    MODIFIED = "modified"
    ADDED = "added"
    DELETED = "deleted"
    MOVED = "moved"


#: Construct categories a diff entry can refer to.
CATEGORIES = (
    "type", "supertype", "extent", "key",
    "attribute", "relationship", "operation",
)


@dataclass(frozen=True, slots=True)
class ChangeEntry:
    """One construct correspondence between original and custom schema.

    ``path`` is ``Type`` / ``Type.name`` / ``Type.keys(a,b)`` style;
    for ``MOVED`` entries ``moved_to`` names the new owning type.
    """

    category: str
    path: str
    status: ChangeStatus
    detail: str = ""
    moved_to: str | None = None

    def __str__(self) -> str:
        text = f"{self.status.value:9s} {self.category:12s} {self.path}"
        if self.moved_to:
            text += f" -> {self.moved_to}"
        if self.detail:
            text += f"  ({self.detail})"
        return text


@dataclass
class SchemaDiff:
    """All construct correspondences between two schemas."""

    original_name: str
    custom_name: str
    entries: list[ChangeEntry]

    def of_status(self, status: ChangeStatus) -> list[ChangeEntry]:
        """Entries with one status, in diff order."""
        return [entry for entry in self.entries if entry.status is status]

    def changed(self) -> list[ChangeEntry]:
        """Every entry that is not ``UNCHANGED``."""
        return [
            entry
            for entry in self.entries
            if entry.status is not ChangeStatus.UNCHANGED
        ]

    def is_empty(self) -> bool:
        """True when the two schemas are identical."""
        return not self.changed()

    def counts(self) -> dict[str, int]:
        """Entry counts per status (used by reports and benches)."""
        result = {status.value: 0 for status in ChangeStatus}
        for entry in self.entries:
            result[entry.status.value] += 1
        return result

    def summary(self) -> str:
        """Multi-line listing of every non-unchanged entry."""
        lines = [
            f"diff {self.original_name!r} -> {self.custom_name!r}:",
        ]
        changed = self.changed()
        if not changed:
            lines.append("  (schemas are identical)")
        lines.extend(f"  {entry}" for entry in changed)
        return "\n".join(lines)


def diff_schemas(original: Schema, custom: Schema) -> SchemaDiff:
    """Compute the construct-level diff from *original* to *custom*."""
    entries: list[ChangeEntry] = []
    original_types = set(original.type_names())
    custom_types = set(custom.type_names())

    for name in original.type_names():
        if name in custom_types:
            entries.append(
                ChangeEntry(
                    "type", name,
                    ChangeStatus.UNCHANGED
                    if _interfaces_equal(original.get(name), custom.get(name))
                    else ChangeStatus.MODIFIED,
                )
            )
            entries.extend(
                _diff_interface(original, custom, name)
            )
        else:
            entries.append(ChangeEntry("type", name, ChangeStatus.DELETED))
            entries.extend(
                _members_as(original.get(name), original, custom,
                            ChangeStatus.DELETED, moved_check=True)
            )
    for name in custom.type_names():
        if name not in original_types:
            entries.append(ChangeEntry("type", name, ChangeStatus.ADDED))
            entries.extend(
                _members_as(custom.get(name), custom, original,
                            ChangeStatus.ADDED, moved_check=False)
            )
    return SchemaDiff(original.name, custom.name, entries)


def schema_diff(original: Schema, custom: Schema) -> SchemaDiff:
    """Record-level diff computed from the two schemas' mutation logs.

    When the schemas are lineage-related (``Schema.fork``), every
    interface outside their logs' divergence suffixes is provably
    identical -- the spine records every mutation -- so only the touched
    names are walked.  The result's :meth:`SchemaDiff.changed` set
    equals :func:`diff_schemas`'s exactly; untouched types contribute a
    single type-level ``UNCHANGED`` entry instead of per-member
    ``UNCHANGED`` detail (the saving *is* the point).

    Falls back to the full structural walk when the schemas share no
    lineage, a relevant log segment is lossy (an out-of-band
    ``Schema.touch()``), or the logs disagree with the membership
    actually observed.
    """
    touched = touched_names_between(original, custom)
    if touched is None:
        return diff_schemas(original, custom)
    entries: list[ChangeEntry] = []
    original_types = set(original.type_names())
    custom_types = set(custom.type_names())
    if (original_types ^ custom_types) - touched:
        # A membership difference the logs failed to name: distrust them.
        return diff_schemas(original, custom)

    for name in original.type_names():
        if name not in touched:
            entries.append(
                ChangeEntry("type", name, ChangeStatus.UNCHANGED)
            )
            continue
        if name in custom_types:
            entries.append(
                ChangeEntry(
                    "type", name,
                    ChangeStatus.UNCHANGED
                    if _interfaces_equal(original.get(name), custom.get(name))
                    else ChangeStatus.MODIFIED,
                )
            )
            entries.extend(_diff_interface(original, custom, name))
        else:
            entries.append(ChangeEntry("type", name, ChangeStatus.DELETED))
            entries.extend(
                _members_as(original.get(name), original, custom,
                            ChangeStatus.DELETED, moved_check=True)
            )
    for name in custom.type_names():
        if name not in original_types:
            entries.append(ChangeEntry("type", name, ChangeStatus.ADDED))
            entries.extend(
                _members_as(custom.get(name), custom, original,
                            ChangeStatus.ADDED, moved_check=False)
            )
    return SchemaDiff(original.name, custom.name, entries)


def _interfaces_equal(first: InterfaceDef, second: InterfaceDef) -> bool:
    from repro.model.fingerprint import interface_fingerprint

    return interface_fingerprint(first) == interface_fingerprint(second)


def _diff_interface(
    original: Schema, custom: Schema, name: str
) -> Iterator[ChangeEntry]:
    """Diff the members of a type present in both schemas."""
    old = original.get(name)
    new = custom.get(name)

    for supertype in old.supertypes:
        if supertype in new.supertypes:
            yield ChangeEntry(
                "supertype", f"{name} ISA {supertype}", ChangeStatus.UNCHANGED
            )
        else:
            yield ChangeEntry(
                "supertype", f"{name} ISA {supertype}", ChangeStatus.DELETED
            )
    for supertype in new.supertypes:
        if supertype not in old.supertypes:
            yield ChangeEntry(
                "supertype", f"{name} ISA {supertype}", ChangeStatus.ADDED
            )

    if old.extent != new.extent:
        if old.extent is None:
            yield ChangeEntry(
                "extent", f"{name}.extent={new.extent}", ChangeStatus.ADDED
            )
        elif new.extent is None:
            yield ChangeEntry(
                "extent", f"{name}.extent={old.extent}", ChangeStatus.DELETED
            )
        else:
            yield ChangeEntry(
                "extent", f"{name}.extent", ChangeStatus.MODIFIED,
                detail=f"{old.extent} -> {new.extent}",
            )
    elif old.extent is not None:
        yield ChangeEntry(
            "extent", f"{name}.extent={old.extent}", ChangeStatus.UNCHANGED
        )

    for key in old.keys:
        status = (
            ChangeStatus.UNCHANGED if key in new.keys else ChangeStatus.DELETED
        )
        yield ChangeEntry("key", f"{name}.keys({', '.join(key)})", status)
    for key in new.keys:
        if key not in old.keys:
            yield ChangeEntry(
                "key", f"{name}.keys({', '.join(key)})", ChangeStatus.ADDED
            )

    yield from _diff_members(
        "attribute", old.attributes, new.attributes, name, original, custom
    )
    yield from _diff_members(
        "relationship", old.relationships, new.relationships, name,
        original, custom,
    )
    yield from _diff_members(
        "operation", old.operations, new.operations, name, original, custom
    )


def _diff_members(
    category: str, old_members: dict, new_members: dict, owner: str,
    original: Schema, custom: Schema,
) -> Iterator[ChangeEntry]:
    for member_name, old_value in old_members.items():
        path = f"{owner}.{member_name}"
        if member_name in new_members:
            new_value = new_members[member_name]
            if _member_equal(category, old_value, new_value):
                yield ChangeEntry(category, path, ChangeStatus.UNCHANGED)
            else:
                yield ChangeEntry(
                    category, path, ChangeStatus.MODIFIED,
                    detail=f"{old_value} -> {new_value}",
                )
        else:
            new_owner = _find_move_target(
                category, member_name, owner, original, custom
            )
            if new_owner is not None:
                yield ChangeEntry(
                    category, path, ChangeStatus.MOVED, moved_to=new_owner
                )
            else:
                yield ChangeEntry(category, path, ChangeStatus.DELETED)
    for member_name, new_value in new_members.items():
        if member_name in old_members:
            continue
        old_owner = _find_move_target(
            category, member_name, owner, custom, original
        )
        if old_owner is not None:
            continue  # reported as MOVED from the other side
        yield ChangeEntry(
            category, f"{owner}.{member_name}", ChangeStatus.ADDED
        )


def _member_equal(category: str, old_value, new_value) -> bool:
    if category == "relationship":
        # Ends compare by full value; retargets show as MODIFIED here and
        # the moved inverse declaration as MOVED on the other type.
        return old_value == new_value
    return old_value == new_value


def _find_move_target(
    category: str, member_name: str, owner: str,
    source: Schema, destination: Schema,
) -> str | None:
    """Find the ISA relative of *owner* now holding *member_name*.

    ISA relatives are gathered from both schemas: *owner* may have been
    deleted from one side (a type deletion after moving its information
    up the hierarchy), so either hierarchy may hold the relating edges.
    """
    relatives: set[str] = set()
    for schema in (source, destination):
        if owner in schema:
            relatives |= schema.ancestors(owner) | schema.descendants(owner)
    if not relatives:
        return None
    for candidate in sorted(relatives):
        if candidate == owner or candidate not in destination:
            continue
        if member_name not in _members_of(destination.get(candidate), category):
            continue
        # The member must be new to the candidate: a genuine move, not a
        # same-named construct that already existed there.
        already_there = candidate in source and member_name in _members_of(
            source.get(candidate), category
        )
        if not already_there:
            return candidate
    return None


def _members_of(interface: InterfaceDef, category: str) -> dict:
    return {
        "attribute": interface.attributes,
        "relationship": interface.relationships,
        "operation": interface.operations,
    }[category]


def _members_as(
    interface: InterfaceDef, owning_schema: Schema, other_schema: Schema,
    status: ChangeStatus, moved_check: bool,
) -> Iterator[ChangeEntry]:
    """Report every member of a type that exists on only one side.

    With ``moved_check`` set, members that reappear under the same name in
    an ISA relative on the other side are reported as ``MOVED`` instead
    of *status* -- a type deletion often follows moving its information
    up the hierarchy.
    """
    for category in ("attribute", "relationship", "operation"):
        for member_name in _members_of(interface, category):
            moved_to = None
            if moved_check:
                moved_to = _find_move_target(
                    category, member_name, interface.name,
                    owning_schema, other_schema,
                )
            if moved_to is not None:
                yield ChangeEntry(
                    category, f"{interface.name}.{member_name}",
                    ChangeStatus.MOVED, moved_to=moved_to,
                )
            else:
                yield ChangeEntry(
                    category, f"{interface.name}.{member_name}", status
                )
