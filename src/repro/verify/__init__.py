"""Differential verification: invariants, fuzzing, shrinking.

The paper's central claim is behavioural -- the modification-operation
language keeps every customized schema consistent with its shrink wrap
origin.  This package makes that claim executable: an invariant
registry (:mod:`repro.verify.invariants`), a seeded operation-sequence
fuzzer with a differential history model (:mod:`repro.verify.fuzzer`),
a delta-debugging shrinker emitting pytest reproducers
(:mod:`repro.verify.shrinker`), and a campaign CLI
(``python -m repro.verify``, :mod:`repro.verify.runner`).
"""

from repro.verify.fuzzer import (
    DifferentialHarness,
    FuzzFailure,
    FuzzReport,
    FuzzStep,
    fuzz,
    replay,
)
from repro.verify.invariants import (
    INVARIANTS,
    Invariant,
    Violation,
    check_schema,
    check_workspace,
    describe_registry,
    invariant,
    workspace_invariant,
)
from repro.verify.shrinker import ShrinkResult, emit_pytest, shrink

__all__ = [
    "DifferentialHarness",
    "FuzzFailure",
    "FuzzReport",
    "FuzzStep",
    "INVARIANTS",
    "Invariant",
    "ShrinkResult",
    "Violation",
    "check_schema",
    "check_workspace",
    "describe_registry",
    "emit_pytest",
    "fuzz",
    "invariant",
    "replay",
    "shrink",
    "workspace_invariant",
]
