"""Pretty-printer generating extended-ODL text from model objects.

``parse_schema(print_schema(s))`` reproduces *s* exactly (tested as a
hypothesis property), so printed ODL is a faithful interchange format for
repositories and the before/after listings the paper shows (Figure 8).
"""

from __future__ import annotations

from repro.model.interface import InterfaceDef
from repro.model.schema import Schema

_INDENT = "    "


def print_schema(schema: Schema) -> str:
    """Render the whole schema as extended ODL, one interface per block."""
    blocks = [print_interface(interface) for interface in schema]
    return "\n\n".join(blocks) + ("\n" if blocks else "")


def print_interface(interface: InterfaceDef) -> str:
    """Render one interface definition as extended ODL."""
    header = f"interface {interface.name}"
    if interface.supertypes:
        header += " : " + ", ".join(interface.supertypes)
    lines = [header + " {"]
    if interface.extent is not None:
        lines.append(f"{_INDENT}extent {interface.extent};")
    if interface.keys:
        keys = ", ".join(f"({', '.join(key)})" for key in interface.keys)
        lines.append(f"{_INDENT}keys {keys};")
    for attribute in interface.attributes.values():
        lines.append(f"{_INDENT}{attribute};")
    for end in interface.relationships.values():
        lines.append(f"{_INDENT}{end};")
    for operation in interface.operations.values():
        lines.append(f"{_INDENT}{operation.signature()};")
    lines.append("};")
    return "\n".join(lines)
