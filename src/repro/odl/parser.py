"""Recursive-descent parser for the extended ODL.

The dialect follows ODMG-93 ODL with the two grammar extensions the paper
introduces (Section 3.1): ``part_of relationship`` and ``instance_of
relationship`` declarations.  Extent and key declarations are written as
body members (``extent name;`` / ``keys (a), (b, c);``) rather than in the
ODMG interface header -- one notation, documented here, kept simple.

Grammar (EBNF)::

    schema          = { interface_def } ;
    interface_def   = "interface" IDENT [ ":" ident_list ]
                      "{" { member } "}" [ ";" ] ;
    member          = extent_decl | keys_decl | attribute_decl
                    | relationship_decl | operation_decl ;
    extent_decl     = "extent" IDENT ";" ;
    keys_decl       = ( "key" | "keys" ) key_spec { "," key_spec } ";" ;
    key_spec        = IDENT | "(" ident_list ")" ;
    attribute_decl  = "attribute" type IDENT ";" ;
    relationship_decl = [ "part_of" | "instance_of" ] "relationship"
                      type IDENT "inverse" IDENT "::" IDENT
                      [ "order_by" "(" ident_list ")" ] ";" ;
    operation_decl  = type IDENT "(" [ param { "," param } ] ")"
                      [ "raises" "(" ident_list ")" ] ";" ;
    param           = ( "in" | "out" | "inout" ) type IDENT ;
    type            = collection | sized_scalar | IDENT ;
    collection      = ( "set" | "list" | "bag" | "array" )
                      "<" type [ "," NUMBER ] ">" ;
    sized_scalar    = SCALAR_NAME [ "(" NUMBER ")" ] ;
"""

from __future__ import annotations

from repro.model.attributes import Attribute
from repro.model.interface import InterfaceDef
from repro.model.operations import Operation, Parameter
from repro.model.relationships import RelationshipEnd, RelationshipKind
from repro.model.schema import Schema
from repro.model.types import (
    COLLECTION_KINDS,
    SCALAR_TYPE_NAMES,
    CollectionType,
    NamedType,
    ScalarType,
    TypeRef,
)
from repro.odl.lexer import IDENT, TokenStream

_RELATIONSHIP_KEYWORDS = {
    "part_of": RelationshipKind.PART_OF,
    "instance_of": RelationshipKind.INSTANCE_OF,
}


def parse_schema(text: str, name: str = "schema") -> Schema:
    """Parse extended-ODL *text* into a :class:`~repro.model.Schema`.

    Interfaces may reference each other in any order; resolution is by
    name, and structural problems (dangling names, missing inverses) are
    the business of :func:`repro.model.validation.validate_schema`, not
    the parser.
    """
    stream = TokenStream(text)
    wrapped = False
    if stream.at_ident("module"):
        # ODMG module wrapper: ``module Name { ... };``.  The module
        # name becomes the schema name.
        stream.advance()
        name = stream.expect_ident().value
        stream.expect_punct("{")
        wrapped = True
    schema = Schema(name)
    while stream.at_ident("interface"):
        schema.add_interface(_parse_interface(stream))
    if wrapped:
        stream.expect_punct("}")
        stream.accept_punct(";")
    stream.expect_end()
    return schema


def parse_interface(text: str) -> InterfaceDef:
    """Parse a single interface definition."""
    stream = TokenStream(text)
    interface = _parse_interface(stream)
    stream.expect_end()
    return interface


def parse_type(text: str) -> TypeRef:
    """Parse a type written in extended-ODL syntax, e.g. ``set<string(30)>``."""
    stream = TokenStream(text)
    type_ref = _parse_type(stream)
    stream.expect_end()
    return type_ref


def _parse_interface(stream: TokenStream) -> InterfaceDef:
    stream.expect_ident("interface")
    name = stream.expect_ident().value
    supertypes: list[str] = []
    if stream.accept_punct(":"):
        supertypes.append(stream.expect_ident().value)
        while stream.accept_punct(","):
            supertypes.append(stream.expect_ident().value)
    interface = InterfaceDef(name, supertypes=supertypes)
    stream.expect_punct("{")
    while not stream.at_punct("}"):
        _parse_member(stream, interface)
    stream.expect_punct("}")
    stream.accept_punct(";")
    return interface


def _parse_member(stream: TokenStream, interface: InterfaceDef) -> None:
    if stream.at_ident("extent"):
        stream.advance()
        extent = stream.expect_ident().value
        stream.expect_punct(";")
        interface.set_extent(extent)
        return
    if stream.at_ident("key") or stream.at_ident("keys"):
        stream.advance()
        interface.add_key(_parse_key_spec(stream))
        while stream.accept_punct(","):
            interface.add_key(_parse_key_spec(stream))
        stream.expect_punct(";")
        return
    if stream.at_ident("attribute"):
        stream.advance()
        attr_type = _parse_type(stream)
        attr_name = stream.expect_ident().value
        stream.expect_punct(";")
        interface.add_attribute(Attribute(attr_name, attr_type))
        return
    if (
        stream.at_ident("relationship")
        or stream.current.value in _RELATIONSHIP_KEYWORDS
    ):
        interface.add_relationship(_parse_relationship(stream))
        return
    # Anything else must be an operation declaration: type name ( ... ) ;
    interface.add_operation(_parse_operation(stream))


def _parse_key_spec(stream: TokenStream) -> tuple[str, ...]:
    if stream.accept_punct("("):
        names = [stream.expect_ident().value]
        while stream.accept_punct(","):
            names.append(stream.expect_ident().value)
        stream.expect_punct(")")
        return tuple(names)
    return (stream.expect_ident().value,)


def _parse_relationship(stream: TokenStream) -> RelationshipEnd:
    kind = RelationshipKind.ASSOCIATION
    if stream.current.type == IDENT and stream.current.value in _RELATIONSHIP_KEYWORDS:
        kind = _RELATIONSHIP_KEYWORDS[stream.advance().value]
    stream.expect_ident("relationship")
    target = _parse_type(stream)
    path_name = stream.expect_ident().value
    stream.expect_ident("inverse")
    inverse_type = stream.expect_ident().value
    stream.expect_punct("::")
    inverse_name = stream.expect_ident().value
    order_by: tuple[str, ...] = ()
    if stream.accept_ident("order_by"):
        stream.expect_punct("(")
        names = [stream.expect_ident().value]
        while stream.accept_punct(","):
            names.append(stream.expect_ident().value)
        stream.expect_punct(")")
        order_by = tuple(names)
    stream.expect_punct(";")
    return RelationshipEnd(
        path_name, target, inverse_type, inverse_name, kind, order_by
    )


def _parse_operation(stream: TokenStream) -> Operation:
    return_type = _parse_type(stream)
    name = stream.expect_ident().value
    stream.expect_punct("(")
    parameters: list[Parameter] = []
    if not stream.at_punct(")"):
        parameters.append(_parse_parameter(stream))
        while stream.accept_punct(","):
            parameters.append(_parse_parameter(stream))
    stream.expect_punct(")")
    exceptions: tuple[str, ...] = ()
    if stream.accept_ident("raises"):
        stream.expect_punct("(")
        names = [stream.expect_ident().value]
        while stream.accept_punct(","):
            names.append(stream.expect_ident().value)
        stream.expect_punct(")")
        exceptions = tuple(names)
    stream.expect_punct(";")
    return Operation(name, return_type, tuple(parameters), exceptions)


def _parse_parameter(stream: TokenStream) -> Parameter:
    if stream.current.value not in ("in", "out", "inout"):
        raise stream.error(
            f"expected a parameter direction (in/out/inout), found {stream.current}"
        )
    direction = stream.advance().value
    param_type = _parse_type(stream)
    param_name = stream.expect_ident().value
    return Parameter(direction, param_type, param_name)


def parse_type_from(stream: TokenStream) -> TypeRef:
    """Parse one type at the stream cursor (shared with the op language)."""
    return _parse_type(stream)


def _parse_type(stream: TokenStream) -> TypeRef:
    token = stream.expect_ident()
    word = token.value
    if word in COLLECTION_KINDS:
        stream.expect_punct("<")
        element = _parse_type(stream)
        size = None
        if stream.accept_punct(","):
            size = stream.expect_number()
        stream.expect_punct(">")
        return CollectionType(word, element, size)
    if word in SCALAR_TYPE_NAMES:
        size = None
        if stream.at_punct("("):
            stream.advance()
            size = stream.expect_number()
            stream.expect_punct(")")
        return ScalarType(word, size)
    return NamedType(word)
