"""Seeded, best-effort population generation for fuzzing.

:func:`generate_population` builds a small :class:`~repro.instances
.population.Population` that the schema *admits* -- objects with
key-satisfying attribute values and mirrored relationship links that
respect cardinalities, order-bys, and the part-of/instance-of hierarchy
rules.  The fuzzer (PR 7) carries these populations alongside the
schemas it evolves, so a shrunk reproducer shows not just the operation
trace but concrete witnessing data.

The generator is deliberately *best effort*:
:func:`repro.instances.check.check_population` is the specification,
not this module.  After building, the population is self-checked; if
the schema rejects it (exotic key shapes, inverse arity tangles on
fuzz-evolved schemas), the generator degrades to a link-free
population, and failing even that, to the empty population -- both of
which every schema admits.  The one guarantee is therefore: the
returned population is always clean under ``check_population``.
"""

from __future__ import annotations

import random

from repro.examples.generator import _Builder
from repro.instances.check import available_relationships, check_population
from repro.instances.population import Population
from repro.model.relationships import RelationshipKind
from repro.model.schema import Schema
from repro.model.types import CollectionType

#: Soft cap on distinct interfaces a generated population draws from.
_MAX_TYPES = 24

#: Objects created per sampled interface (1..this).
_MAX_PER_TYPE = 2


def _extent_members(
    schema: Schema, objects_by_type: dict[str, list[str]], interface: str
) -> list[str]:
    """Oids whose object type lies in *interface*'s extent."""
    members: list[str] = []
    for type_name, oids in objects_by_type.items():
        if type_name == interface or interface in schema.ancestors(type_name):
            members.extend(oids)
    return members


def _capacity(end, existing: int) -> int:
    """How many more targets the end admits (arity only)."""
    if not end.is_to_many:
        return 1 - existing
    target = end.target
    if isinstance(target, CollectionType) and target.size is not None:
        return target.size - existing
    return 2 - existing  # soft cap: small populations shrink better


def generate_population(
    schema: Schema, *, seed: int = 0, name: str | None = None
) -> Population:
    """A small population the schema admits (seeded, deterministic)."""
    rng = random.Random(seed)
    pop = Population(name or f"{schema.name}_pop_{seed}")
    builder = _Builder(schema)
    type_names = sorted(schema.type_names())
    if len(type_names) > _MAX_TYPES:
        type_names = rng.sample(type_names, _MAX_TYPES)
        type_names.sort()

    objects_by_type: dict[str, list[str]] = {}
    order: dict[str, int] = {}  # creation rank, for hierarchy acyclicity
    for type_name in type_names:
        for index in range(rng.randint(1, _MAX_PER_TYPE)):
            oid = f"{type_name.lower()}_{index}"
            if not builder.make(pop, type_name, oid):
                continue
            if check_population(schema, pop):
                # e.g. a boolean key attribute admits only two objects
                # across the whole extent closure -- drop the clash.
                del pop.objects[oid]
                continue
            objects_by_type.setdefault(type_name, []).append(oid)
            order[oid] = len(order)

    hierarchy_owned: set[tuple[str, str, str]] = set()
    for type_name in sorted(objects_by_type):
        ends = available_relationships(schema, type_name)
        for oid in objects_by_type[type_name]:
            for path in sorted(ends):
                defining_type, end = ends[path]
                if rng.random() > 0.6:
                    continue
                room = _capacity(end, len(pop.get(oid).links.get(path, ())))
                if room <= 0:
                    continue
                candidates = [
                    target
                    for target in _extent_members(
                        schema, objects_by_type, end.target_type
                    )
                    if target != oid
                    and target not in pop.get(oid).links.get(path, ())
                ]
                if end.kind is not RelationshipKind.ASSOCIATION:
                    # Exclusive membership per relationship, and only
                    # earlier->later links, so the object graph of each
                    # hierarchy stays acyclic by construction.
                    candidates = [
                        target
                        for target in candidates
                        if order[target] > order[oid]
                        and (defining_type, path, target)
                        not in hierarchy_owned
                    ]
                inverse = schema.find_inverse(defining_type, end)
                if inverse is not None:
                    candidates = [
                        target
                        for target in candidates
                        if _capacity(
                            inverse,
                            len(pop.get(target).links.get(end.inverse_name, ())),
                        ) > 0
                    ]
                if not candidates:
                    continue
                count = min(room, rng.randint(1, 2), len(candidates))
                chosen = rng.sample(candidates, count)
                if end.order_by:
                    if not all(
                        builder.fill_attributes(
                            pop, target, pop.get(target).type_name,
                            end.order_by,
                        )
                        for target in chosen
                    ):
                        continue
                    try:
                        chosen.sort(key=lambda target: tuple(
                            pop.get(target).attributes.get(attr)
                            for attr in end.order_by
                        ))
                    except TypeError:
                        continue
                for target in chosen:
                    pop.wire(schema, oid, path, target)
                    if end.kind is not RelationshipKind.ASSOCIATION:
                        hierarchy_owned.add((defining_type, path, target))

    if not check_population(schema, pop):
        return pop
    # Degrade: objects alone were clean when created (checked above), so
    # dropping the links restores that; failing even that (it should
    # not happen), the empty population is admitted by every schema.
    for instance in pop:
        instance.links.clear()
    if not check_population(schema, pop):
        return pop
    return Population(pop.name)
