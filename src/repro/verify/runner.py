"""Campaign runner and CLI for the differential verification subsystem.

``python -m repro.verify`` sweeps the fuzzer over every catalog schema
plus a ladder of generated schemas, one seeded run per (subject, seed)
pair.  On a failure it delta-debugs the trace to a minimal reproducer
and prints it as a ready-to-paste pytest module, then exits non-zero --
the shrunk test is the bug report.

The smoke configuration (``make fuzz-smoke``) keeps the sweep around
half a minute; the acceptance configuration (``--seeds 25 --steps 200``)
is the deeper soak the ROADMAP's verification contract calls for.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.catalog import SCHEMA_BUILDERS, load
from repro.model.schema import Schema
from repro.verify.fuzzer import FuzzReport, fuzz
from repro.verify.invariants import check_schema, describe_registry
from repro.verify.shrinker import emit_pytest, shrink
from repro.workload.generator import WorkloadSpec, generate_schema


@dataclass(frozen=True)
class Subject:
    """One reference schema the campaign fuzzes against.

    ``source`` is an expression rebuilding the schema -- it goes
    verbatim into emitted reproducers, so it must be self-contained
    given the catalog / workload imports.
    """

    name: str
    source: str
    build: Callable[[], Schema]


def catalog_subjects() -> list[Subject]:
    """Every shrink wrap schema shipped in the catalog."""
    return [
        Subject(name, f"load({name!r})", lambda name=name: load(name))
        for name in SCHEMA_BUILDERS
    ]


def generated_subject(seed: int, types: int = 14) -> Subject:
    """A deterministic synthetic schema (exercises generated shapes)."""
    spec = WorkloadSpec(types=types, seed=seed)
    return Subject(
        f"synthetic_{types}_{seed}",
        f"generate_schema({spec!r})",
        lambda: generate_schema(spec),
    )


def campaign_subjects(seeds: int) -> list[tuple[Subject, int]]:
    """(subject, fuzz seed) pairs: catalog and synthetic interleaved."""
    catalog = catalog_subjects()
    pairs: list[tuple[Subject, int]] = []
    for seed in range(seeds):
        pairs.append((catalog[seed % len(catalog)], seed))
        pairs.append((generated_subject(seed), seed))
    return pairs


def run_campaign(
    seeds: int,
    steps: int,
    check_every: int = 4,
    only_schema: str | None = None,
    do_shrink: bool = True,
    fail_fast: bool = True,
    out=sys.stdout,
) -> list[FuzzReport]:
    """Run the sweep; prints one summary line per run, reproducers on
    failure.  Returns every report (failures included)."""
    pairs = campaign_subjects(seeds)
    if only_schema is not None:
        pairs = [
            (subject, seed)
            for subject, seed in pairs
            if subject.name == only_schema
        ]
        if not pairs:
            raise SystemExit(f"unknown subject {only_schema!r}")
    reports: list[FuzzReport] = []
    for subject, seed in pairs:
        reference = subject.build()
        baseline = check_schema(reference)
        if baseline:
            print(f"SKIP {subject.name}: reference schema is dirty", file=out)
            for violation in baseline:
                print(f"  {violation}", file=out)
            continue
        report = fuzz(
            reference,
            seed=seed,
            steps=steps,
            check_every=check_every,
            subject_name=subject.name,
        )
        reports.append(report)
        print(report.summary(), file=out)
        if report.failure is not None:
            print(report.failure.render(), file=out)
            if do_shrink:
                result = shrink(
                    subject.build(), report.trace, report.failure
                )
                print(result.summary(), file=out)
                print("--- minimal reproducer ---", file=out)
                print(
                    emit_pytest(
                        subject.source,
                        result.steps,
                        result.failure,
                        test_name=(
                            f"test_fuzz_{subject.name}_seed{seed}"
                        ),
                    ),
                    file=out,
                )
            if fail_fast:
                break
    return reports


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description=(
            "Differential verification: fuzz operation sequences against "
            "the invariant registry, shrinking any failure to a minimal "
            "pytest reproducer."
        ),
    )
    parser.add_argument(
        "--seeds", type=int, default=10,
        help="fuzz seeds per subject family (default 10)",
    )
    parser.add_argument(
        "--steps", type=int, default=100,
        help="operations per fuzz run (default 100)",
    )
    parser.add_argument(
        "--check-every", type=int, default=4,
        help="run expensive-tier invariants every N steps (default 4)",
    )
    parser.add_argument(
        "--schema", default=None,
        help="restrict the sweep to one subject name",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="report failures without delta-debugging them",
    )
    parser.add_argument(
        "--keep-going", action="store_true",
        help="continue the sweep past the first failure",
    )
    parser.add_argument(
        "--list-invariants", action="store_true",
        help="print the invariant registry and exit",
    )
    options = parser.parse_args(argv)
    if options.list_invariants:
        print(describe_registry())
        return 0
    reports = run_campaign(
        seeds=options.seeds,
        steps=options.steps,
        check_every=options.check_every,
        only_schema=options.schema,
        do_shrink=not options.no_shrink,
        fail_fast=not options.keep_going,
    )
    failures = [report for report in reports if not report.ok]
    accepted = sum(report.accepted for report in reports)
    rejected = sum(report.rejected for report in reports)
    print(
        f"{len(reports)} runs, {accepted} operations accepted, "
        f"{rejected} rejected, {len(failures)} failing runs"
    )
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
