"""Interface definitions (object types) of the extended object model.

An :class:`InterfaceDef` gathers the *type properties* (supertypes, extent
name, key lists) and *instance properties* (attributes, relationship ends,
operations) of one object type, mirroring the candidates-for-modification
breakdown of the paper's Tables 2 and 3.

Interfaces are mutable containers, but every individual property value is
an immutable dataclass; mutation happens by replacing whole entries.  All
edits in a design session should go through :mod:`repro.ops` operations so
that they are validated, logged, and reversible -- the methods here are
the primitive storage layer those operations use.

Every mutator emits one :class:`~repro.model.mutation.MutationRecord`
onto each owning schema's mutation spine (``tools/check_mutators.py``
enforces this), so cache layers never hear about changes through any
other channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from sys import intern
from typing import TYPE_CHECKING

from repro.model.attributes import Attribute
from repro.model.errors import (
    DuplicateNameError,
    InvalidModelError,
    UnknownPropertyError,
)
from repro.model.mutation import Aspect, aspect_for_kind
from repro.model.operations import Operation
from repro.model.relationships import RelationshipEnd, RelationshipKind
from repro.model.types import referenced_interfaces

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model.mutation import MutationLog

# Shared singleton aspect sets so the emit path allocates nothing.
_ISA = frozenset({Aspect.ISA})
_EXTENT = frozenset({Aspect.EXTENT})
_KEYS = frozenset({Aspect.KEYS})
_ATTRS = frozenset({Aspect.ATTRS})
_OPS = frozenset({Aspect.OPS})
_REL = {
    kind: frozenset({aspect_for_kind(kind)}) for kind in RelationshipKind
}


@dataclass(slots=True)
class InterfaceDef:
    """One object type of a schema.

    ``attributes`` and ``relationships`` share a property namespace (a
    traversal path may not collide with an attribute name); operations
    live in their own namespace because ODL signatures are syntactically
    distinct.  Insertion order is preserved so printed ODL is stable.

    Storage is slotted and all graph-bearing strings (interface name,
    supertype entries, property dict keys) are interned, so identity
    comparison and set membership on them stay cheap at 10k+ types.
    """

    name: str
    supertypes: list[str] = field(default_factory=list)
    extent: str | None = None
    keys: list[tuple[str, ...]] = field(default_factory=list)
    attributes: dict[str, Attribute] = field(default_factory=dict)
    relationships: dict[str, RelationshipEnd] = field(default_factory=dict)
    operations: dict[str, Operation] = field(default_factory=dict)
    # Owning schemas attach their mutation spine here so every mutator
    # below lands one record on it (see repro.model.mutation).  Spines
    # carry identity, not value, and must not take part in __eq__/repr.
    _spines: list["MutationLog"] = field(
        default_factory=list, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.name or not self.name[0].isalpha():
            raise InvalidModelError(f"invalid interface name {self.name!r}")
        if len(set(self.supertypes)) != len(self.supertypes):
            raise InvalidModelError(
                f"interface {self.name!r} lists a duplicate supertype"
            )
        self.name = intern(self.name)
        self.supertypes = [intern(name) for name in self.supertypes]
        self.keys = [tuple(intern(part) for part in key) for key in self.keys]
        self.attributes = {
            intern(name): value for name, value in self.attributes.items()
        }
        self.relationships = {
            intern(name): value for name, value in self.relationships.items()
        }
        self.operations = {
            intern(name): value for name, value in self.operations.items()
        }

    # ------------------------------------------------------------------
    # Owner notification (the mutation spine)
    # ------------------------------------------------------------------

    def _attach_spine(self, log: "MutationLog") -> None:
        """Register an owning schema's mutation log."""
        self._spines.append(log)

    def _detach_spine(self, log: "MutationLog") -> None:
        """Drop one registration of *log* (no-op when absent)."""
        try:
            self._spines.remove(log)
        except ValueError:
            pass

    def _emit(
        self, kind: str, aspects: frozenset[Aspect], payload: dict
    ) -> None:
        """Emit one mutation record onto every owning schema's spine."""
        for log in self._spines:
            log.emit(
                kind, interface=self.name, aspects=aspects, payload=payload
            )

    # ------------------------------------------------------------------
    # Type properties
    # ------------------------------------------------------------------

    def add_supertype(self, supertype: str, position: int | None = None) -> None:
        """Append *supertype* to the ISA list (or insert at *position*)."""
        if supertype == self.name:
            raise InvalidModelError(
                f"interface {self.name!r} cannot be its own supertype"
            )
        if supertype in self.supertypes:
            raise DuplicateNameError(
                f"{self.name!r} already has supertype {supertype!r}"
            )
        supertype = intern(supertype)
        if position is None:
            self.supertypes.append(supertype)
        else:
            self.supertypes.insert(position, supertype)
        self._emit(
            "add_supertype",
            _ISA,
            {"supertype": supertype, "position": position},
        )

    def remove_supertype(self, supertype: str) -> None:
        """Remove *supertype* from the ISA list."""
        try:
            self.supertypes.remove(supertype)
        except ValueError:
            raise UnknownPropertyError(
                f"{self.name!r} has no supertype {supertype!r}"
            ) from None
        self._emit("remove_supertype", _ISA, {"supertype": supertype})

    def set_supertypes(self, supertypes: list[str]) -> None:
        """Replace the whole ISA list (``modify_supertype`` re-wiring)."""
        supertypes = [intern(name) for name in supertypes]
        if self.name in supertypes:
            raise InvalidModelError(
                f"interface {self.name!r} cannot be its own supertype"
            )
        if len(set(supertypes)) != len(supertypes):
            raise InvalidModelError(
                f"interface {self.name!r} lists a duplicate supertype"
            )
        self.supertypes = supertypes
        self._emit("set_supertypes", _ISA, {"supertypes": tuple(supertypes)})

    def set_extent(self, extent: str | None) -> None:
        """Set or clear the extent name (spine-emitting mutator)."""
        self.extent = extent
        self._emit("set_extent", _EXTENT, {"extent": extent})

    def add_key(self, key: tuple[str, ...]) -> None:
        """Add a key (a tuple of attribute names)."""
        key = tuple(intern(part) for part in key)
        if not key:
            raise InvalidModelError("a key must name at least one attribute")
        if key in self.keys:
            raise DuplicateNameError(
                f"{self.name!r} already declares key {key!r}"
            )
        self.keys.append(key)
        self._emit("add_key", _KEYS, {"key": key})

    def remove_key(self, key: tuple[str, ...]) -> None:
        """Remove a previously declared key."""
        key = tuple(key)
        try:
            self.keys.remove(key)
        except ValueError:
            raise UnknownPropertyError(
                f"{self.name!r} has no key {key!r}"
            ) from None
        self._emit("remove_key", _KEYS, {"key": key})

    def insert_key(self, key: tuple[str, ...], position: int) -> None:
        """Insert a key at *position* (undo of a key deletion)."""
        key = tuple(intern(part) for part in key)
        if not key:
            raise InvalidModelError("a key must name at least one attribute")
        if key in self.keys:
            raise DuplicateNameError(
                f"{self.name!r} already declares key {key!r}"
            )
        self.keys.insert(position, key)
        self._emit("insert_key", _KEYS, {"key": key, "position": position})

    def replace_key_at(self, position: int, key: tuple[str, ...]) -> tuple[str, ...]:
        """Swap the key at *position* for *key*, returning the old one."""
        key = tuple(intern(part) for part in key)
        if not key:
            raise InvalidModelError("a key must name at least one attribute")
        try:
            old = self.keys[position]
        except IndexError:
            raise UnknownPropertyError(
                f"{self.name!r} has no key at position {position}"
            ) from None
        self.keys[position] = key
        self._emit(
            "replace_key_at", _KEYS, {"position": position, "key": key}
        )
        return old

    # ------------------------------------------------------------------
    # Instance properties
    # ------------------------------------------------------------------

    def _check_property_name_free(self, name: str) -> None:
        if name in self.attributes or name in self.relationships:
            raise DuplicateNameError(
                f"interface {self.name!r} already has a property {name!r}"
            )

    def add_attribute(self, attribute: Attribute) -> None:
        """Add an attribute; its name must be free in the property namespace."""
        self._check_property_name_free(attribute.name)
        self.attributes[intern(attribute.name)] = attribute
        self._emit("add_attribute", _ATTRS, {"attribute": attribute})

    def remove_attribute(self, name: str) -> Attribute:
        """Remove and return the attribute called *name*."""
        try:
            removed = self.attributes.pop(name)
        except KeyError:
            raise UnknownPropertyError(
                f"{self.name!r} has no attribute {name!r}"
            ) from None
        self._emit("remove_attribute", _ATTRS, {"name": name})
        return removed

    def get_attribute(self, name: str) -> Attribute:
        """Return the attribute called *name*."""
        try:
            return self.attributes[name]
        except KeyError:
            raise UnknownPropertyError(
                f"{self.name!r} has no attribute {name!r}"
            ) from None

    def replace_attribute(self, attribute: Attribute) -> Attribute:
        """Swap in a new value for an existing attribute, returning the old."""
        old = self.get_attribute(attribute.name)
        self.attributes[attribute.name] = attribute
        self._emit("replace_attribute", _ATTRS, {"attribute": attribute})
        return old

    def reorder_attributes(self, order: list[str]) -> None:
        """Rebuild the attribute dict in *order* (undo of a deletion).

        *order* must be a permutation of the current attribute names.
        """
        self.attributes = self._reordered(
            self.attributes, order, "attribute"
        )
        self._emit("reorder_attributes", _ATTRS, {"order": tuple(order)})

    def add_relationship(self, end: RelationshipEnd) -> None:
        """Add a relationship end; its path name must be free."""
        self._check_property_name_free(end.name)
        self.relationships[intern(end.name)] = end
        self._emit("add_relationship", _REL[end.kind], {"end": end})

    def remove_relationship(self, name: str) -> RelationshipEnd:
        """Remove and return the relationship end called *name*."""
        try:
            removed = self.relationships.pop(name)
        except KeyError:
            raise UnknownPropertyError(
                f"{self.name!r} has no relationship {name!r}"
            ) from None
        self._emit(
            "remove_relationship", _REL[removed.kind], {"name": name}
        )
        return removed

    def get_relationship(self, name: str) -> RelationshipEnd:
        """Return the relationship end called *name*."""
        try:
            return self.relationships[name]
        except KeyError:
            raise UnknownPropertyError(
                f"{self.name!r} has no relationship {name!r}"
            ) from None

    def replace_relationship(self, end: RelationshipEnd) -> RelationshipEnd:
        """Swap in a new value for an existing end, returning the old."""
        old = self.get_relationship(end.name)
        self.relationships[end.name] = end
        self._emit(
            "replace_relationship",
            _REL[old.kind] | _REL[end.kind],
            {"end": end},
        )
        return old

    def add_operation(self, operation: Operation) -> None:
        """Add an operation; its name must be free among operations."""
        if operation.name in self.operations:
            raise DuplicateNameError(
                f"interface {self.name!r} already has operation "
                f"{operation.name!r}"
            )
        self.operations[intern(operation.name)] = operation
        self._emit("add_operation", _OPS, {"operation": operation})

    def remove_operation(self, name: str) -> Operation:
        """Remove and return the operation called *name*."""
        try:
            removed = self.operations.pop(name)
        except KeyError:
            raise UnknownPropertyError(
                f"{self.name!r} has no operation {name!r}"
            ) from None
        self._emit("remove_operation", _OPS, {"name": name})
        return removed

    def get_operation(self, name: str) -> Operation:
        """Return the operation called *name*."""
        try:
            return self.operations[name]
        except KeyError:
            raise UnknownPropertyError(
                f"{self.name!r} has no operation {name!r}"
            ) from None

    def replace_operation(self, operation: Operation) -> Operation:
        """Swap in a new value for an existing operation, returning the old."""
        old = self.get_operation(operation.name)
        self.operations[operation.name] = operation
        self._emit("replace_operation", _OPS, {"operation": operation})
        return old

    def reorder_operations(self, order: list[str]) -> None:
        """Rebuild the operation dict in *order* (undo of a deletion)."""
        self.operations = self._reordered(
            self.operations, order, "operation"
        )
        self._emit("reorder_operations", _OPS, {"order": tuple(order)})

    def _reordered(self, members: dict, order: list[str], noun: str) -> dict:
        """*members* rebuilt in *order*; must be an exact permutation."""
        if set(order) != set(members) or len(order) != len(members):
            raise UnknownPropertyError(
                f"{self.name!r}: {noun} reorder {list(order)!r} is not a "
                f"permutation of {list(members)!r}"
            )
        return {name: members[name] for name in order}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def relationships_of_kind(
        self, kind: RelationshipKind
    ) -> list[RelationshipEnd]:
        """All ends of the given kind, in declaration order."""
        return [end for end in self.relationships.values() if end.kind is kind]

    def referenced_type_names(self) -> set[str]:
        """Every interface name referenced by this definition.

        Includes supertypes, attribute domains, relationship targets and
        inverse types, and operation signatures.  Used for dangling-
        reference validation and for delete propagation.
        """
        names: set[str] = set(self.supertypes)
        for attribute in self.attributes.values():
            names |= referenced_interfaces(attribute.type)
        for end in self.relationships.values():
            names.add(end.target_type)
            names.add(end.inverse_type)
        for operation in self.operations.values():
            names |= referenced_interfaces(operation.return_type)
            for parameter in operation.parameters:
                names |= referenced_interfaces(parameter.type)
        return names

    def copy(self) -> "InterfaceDef":
        """Deep-enough copy: containers are fresh, values are immutable."""
        return InterfaceDef(
            name=self.name,
            supertypes=list(self.supertypes),
            extent=self.extent,
            keys=[tuple(key) for key in self.keys],
            attributes=dict(self.attributes),
            relationships=dict(self.relationships),
            operations=dict(self.operations),
        )

    def __str__(self) -> str:
        isa = f" : {', '.join(self.supertypes)}" if self.supertypes else ""
        return f"interface {self.name}{isa}"
