"""Tests for repair suggestions (the Constraint Analysis extension)."""

from repro.knowledge.suggestions import suggest_repairs
from repro.odl.parser import parse_schema
from repro.ops.language import parse_composite, parse_operation


def suggestions_for(text):
    return suggest_repairs(parse_schema(text, name="s"))


def texts(suggestions, rule=None):
    return [
        s.operation_text
        for s in suggestions
        if rule is None or s.rule == rule
    ]


class TestSuggestions:
    def test_clean_schema_has_none(self, small):
        assert suggest_repairs(small) == []

    def test_dangling_type_offers_add_or_delete(self):
        suggestions = suggestions_for(
            "interface A { attribute Ghost g; };"
        )
        ops = texts(suggestions, "dangling-type")
        assert "add_type_definition(Ghost)" in ops
        assert "delete_attribute(A, g)" in ops

    def test_dangling_supertype_offers_unlink(self):
        suggestions = suggestions_for("interface A : Ghost {};")
        ops = texts(suggestions, "dangling-type")
        assert "delete_supertype(A, Ghost)" in ops

    def test_missing_inverse_offers_delete(self):
        suggestions = suggestions_for(
            """
            interface A { relationship B to_b inverse B::to_a; };
            interface B {};
            """
        )
        ops = texts(suggestions, "inverse-missing")
        assert "delete_relationship(A, to_b)" in ops

    def test_cardinality_role_offers_cardinality_fix(self):
        suggestions = suggestions_for(
            """
            interface A { part_of relationship set<B> parts inverse B::wholes; };
            interface B { part_of relationship set<A> wholes inverse A::parts; };
            """
        )
        ops = texts(suggestions, "cardinality-role")
        assert ops
        assert all("modify_part_of_cardinality" in op for op in ops)

    def test_isa_cycle_offers_unlink(self):
        suggestions = suggestions_for(
            "interface A : B {}; interface B : A {};"
        )
        ops = texts(suggestions, "isa-cycle")
        assert "delete_supertype(A, B)" in ops or "delete_supertype(B, A)" in ops

    def test_unknown_key_offers_both_paths(self):
        suggestions = suggestions_for(
            "interface A { keys (ghost); attribute long id; };"
        )
        ops = texts(suggestions, "key-unknown")
        assert "delete_key_list(A, (ghost))" in ops
        assert "add_attribute(A, string(20), ghost)" in ops

    def test_unknown_order_by_offers_trim(self):
        suggestions = suggestions_for(
            """
            interface A { relationship set<B> bs inverse B::a
                order_by (name, ghost); };
            interface B { attribute string(5) name;
                relationship A a inverse A::bs; };
            """
        )
        ops = texts(suggestions, "order-by-unknown")
        assert (
            "modify_relationship_order_by(A, bs, (name, ghost), (name))" in ops
        )

    def test_multi_root_offers_abstract_supertype(self):
        suggestions = suggestions_for(
            "interface A {}; interface B {}; interface C : A, B {};"
        )
        ops = texts(suggestions, "multi-root-hierarchy")
        assert len(ops) == 1
        composite = parse_composite(ops[0])
        assert composite.composite_name == "introduce_abstract_supertype"
        assert set(composite.subtype_names) == {"A", "B"}

    def test_suggested_primitives_parse(self):
        suggestions = suggestions_for(
            """
            interface A : Ghost { keys (nope); attribute Ghost g;
                relationship B half inverse B::back; };
            interface B {};
            """
        )
        for suggestion in suggestions:
            if suggestion.rule == "multi-root-hierarchy":
                parse_composite(suggestion.operation_text)
            else:
                parse_operation(suggestion.operation_text)

    def test_suggestion_str(self):
        suggestions = suggestions_for("interface A : Ghost {};")
        assert "dangling-type" in str(suggestions[0])
