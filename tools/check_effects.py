#!/usr/bin/env python
"""Thin shim over the ``effects`` lint pass (see ``repro.lint``).

The effect-signature tracer this script used to implement inline now
lives in :mod:`repro.lint.passes.effects`; the entry point survives so
``python tools/check_effects.py`` keeps working, and the analysis API
(``check_operation_class``, ``reachable_mutators``,
``required_aspects``, ``MUTATOR_ASPECTS``) is re-exported for the tests
that drive it against ad-hoc operation subclasses.  Prefer
``python -m repro.lint`` (or ``make lint``), which runs all contract
passes in one invocation.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.lint.passes.effects import (  # noqa: E402,F401  -- re-exports
    MUTATOR_ASPECTS,
    check_operation_class,
    reachable_mutators,
    required_aspects,
)
from repro.lint.shims import run_shim  # noqa: E402


def main() -> int:
    return run_shim("check_effects")


if __name__ == "__main__":
    raise SystemExit(main())
