"""Figure 6: the EMSL software instance-of sequence.

Extracts the instance-of hierarchy and checks the figure's linear chain:
Application -> Version -> Compiled Version -> Installed Version.
"""

from repro.catalog import software_schema
from repro.concepts.instance_of import extract_instance_of_hierarchy
from repro.designer.render import render_instance_of

SCHEMA = software_schema()


def test_bench_fig6_instance_of(benchmark, report):
    hierarchy = benchmark(extract_instance_of_hierarchy, SCHEMA, "Application")
    report("fig6_software_instance_of", render_instance_of(hierarchy))

    # "In our experience, the instance-of hierarchy has been linear."
    assert hierarchy.is_linear()
    assert hierarchy.chain() == [
        "Application",
        "Application_Version",
        "Compiled_Version",
        "Installed_Version",
    ]
    # Each link has the implicit 1:N shape.
    for edge in hierarchy.edges:
        end = SCHEMA.get(edge.generic).get_relationship(edge.path_name)
        assert end.is_to_many
