"""Completeness of the operation language over ODL (Section 3.5).

"Based on the syntax of ODL, we have enumerated every possible construct
that can be modified in an ODL specification."  This module materialises
that enumeration -- the *candidates for modification* -- and regenerates
Tables 2 and 3:

* Table 2: every candidate is covered by an **add** operation, and "the
  deletion operations are identical, with the word 'add' changed to
  'delete' in the operation name";
* Table 3: the **modify** coverage, where names are deliberately absent
  ("names are not allowed to be modified in accordance with our
  assumptions of uniqueness and equivalence of names").

It also carries the section's reachability argument as executable code:
:func:`full_rebuild_script` produces, for any source/target pair, an
add/delete-only operation plan realising the "extreme case" in which
"the entire shrink wrap schema can be deleted, and an entirely new
(custom) schema can be added" -- demonstrating that the approach "does
not prevent the user from creating any possible schema".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.schema import Schema
from repro.ops.base import SchemaOperation
from repro.ops.registry import OPERATIONS_BY_NAME

#: Every ODL candidate for modification, as enumerated by Table 2.
#: Rows are (candidate, sub-candidate, covering add operation).
TABLE2_ADDITIONS: tuple[tuple[str, str, str], ...] = (
    ("Interface Definition", "Type name", "add_type_definition"),
    ("Type Properties", "Supertype (ISA)", "add_supertype"),
    ("Type Properties", "Extent name", "add_extent_name"),
    ("Type Properties", "Key list", "add_key_list"),
    ("Attribute", "Type", "add_attribute"),
    ("Attribute", "Size", "add_attribute"),
    ("Attribute", "Name", "add_attribute"),
    ("Relationship", "Target type", "add_relationship"),
    ("Relationship", "Traversal path name", "add_relationship"),
    ("Relationship", "Inverse path name", "add_relationship"),
    ("Relationship", "One way cardinality", "add_relationship"),
    ("Relationship", "Order by list", "add_relationship"),
    ("Operation", "Name", "add_operation"),
    ("Operation", "Return type", "add_operation"),
    ("Operation", "Argument list", "add_operation"),
    ("Operation", "Exceptions Raised", "add_operation"),
    ("Part-of Relationship", "Target type", "add_part_of_relationship"),
    ("Part-of Relationship", "Traversal path name", "add_part_of_relationship"),
    ("Part-of Relationship", "Inverse path name", "add_part_of_relationship"),
    ("Part-of Relationship", "One way cardinality", "add_part_of_relationship"),
    ("Part-of Relationship", "Order by list", "add_part_of_relationship"),
    ("Instance-of Relationship", "Target type", "add_instance_of_relationship"),
    (
        "Instance-of Relationship", "Traversal path name",
        "add_instance_of_relationship",
    ),
    (
        "Instance-of Relationship", "Inverse path name",
        "add_instance_of_relationship",
    ),
    (
        "Instance-of Relationship", "One way cardinality",
        "add_instance_of_relationship",
    ),
    (
        "Instance-of Relationship", "Order by list",
        "add_instance_of_relationship",
    ),
)

#: Table 3 rows: candidate, sub-candidate, covering modify operation
#: (``None`` marks names, which are not modifiable -- name equivalence).
TABLE3_MODIFICATIONS: tuple[tuple[str, str, str | None], ...] = (
    ("Interface Definition", "Type name", None),
    ("Type Properties", "Supertype (ISA)", "modify_supertype"),
    ("Type Properties", "Extent name", "modify_extent_name"),
    ("Type Properties", "Key list", "modify_key_list"),
    ("Attribute", "Name", "modify_attribute"),
    ("Attribute", "Type", "modify_attribute_type"),
    ("Attribute", "Size", "modify_attribute_size"),
    ("Relationship", "Target type", "modify_relationship_target_type"),
    ("Relationship", "Traversal path name", None),
    ("Relationship", "Inverse path name", None),
    ("Relationship", "One way cardinality", "modify_relationship_cardinality"),
    ("Relationship", "Order by list", "modify_relationship_order_by"),
    ("Operation", "Name", "modify_operation"),
    ("Operation", "Return type", "modify_operation_return_type"),
    ("Operation", "Argument list", "modify_operation_arg_list"),
    ("Operation", "Exceptions Raised", "modify_operation_exceptions_raised"),
    ("Part-of Relationship", "Target type", "modify_part_of_target_type"),
    ("Part-of Relationship", "Traversal path name", None),
    ("Part-of Relationship", "Inverse path name", None),
    ("Part-of Relationship", "One way cardinality", "modify_part_of_cardinality"),
    ("Part-of Relationship", "Order by list", "modify_part_of_order_by"),
    (
        "Instance-of Relationship", "Target type",
        "modify_instance_of_target_type",
    ),
    ("Instance-of Relationship", "Traversal path name", None),
    ("Instance-of Relationship", "Inverse path name", None),
    (
        "Instance-of Relationship", "One way cardinality",
        "modify_instance_of_cardinality",
    ),
    ("Instance-of Relationship", "Order by list", "modify_instance_of_order_by"),
)

#: Note: Table 3 lists ``modify_attribute`` / ``modify_operation`` on the
#: "Name" rows because those operations move the construct to a new
#: owner; the *name itself* still never changes.


@dataclass(frozen=True, slots=True)
class CoverageRow:
    """One row of a coverage table, resolved against the registry."""

    candidate: str
    sub_candidate: str
    operation: str | None
    implemented: bool

    def __str__(self) -> str:
        op = self.operation or "(not allowed: name equivalence)"
        mark = "ok" if self.implemented or self.operation is None else "MISSING"
        return f"{self.candidate:26s} {self.sub_candidate:22s} {op:36s} {mark}"


def table2_rows(action: str = "add") -> list[CoverageRow]:
    """Resolve Table 2 (or its delete mirror) against the registry.

    ``action`` is ``"add"`` or ``"delete"``; the delete table is the add
    table with the operation-name prefix swapped, exactly as the paper
    states.
    """
    if action not in ("add", "delete"):
        raise ValueError("action must be 'add' or 'delete'")
    rows = []
    for candidate, sub_candidate, add_name in TABLE2_ADDITIONS:
        name = add_name if action == "add" else "delete" + add_name[len("add"):]
        rows.append(
            CoverageRow(
                candidate, sub_candidate, name, name in OPERATIONS_BY_NAME
            )
        )
    return rows


def table3_rows() -> list[CoverageRow]:
    """Resolve Table 3 against the registry."""
    return [
        CoverageRow(
            candidate, sub_candidate, name,
            name is not None and name in OPERATIONS_BY_NAME,
        )
        for candidate, sub_candidate, name in TABLE3_MODIFICATIONS
    ]


def coverage_gaps() -> list[CoverageRow]:
    """Rows whose covering operation is not implemented (must be empty)."""
    gaps = [row for row in table2_rows("add") if not row.implemented]
    gaps += [row for row in table2_rows("delete") if not row.implemented]
    gaps += [
        row for row in table3_rows()
        if row.operation is not None and not row.implemented
    ]
    return gaps


def format_table(rows: list[CoverageRow], title: str) -> str:
    """Render one coverage table as aligned text."""
    lines = [title, "-" * len(title)]
    lines.extend(str(row) for row in rows)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# The reachability argument
# ----------------------------------------------------------------------

def add_only_script(target: Schema) -> list[SchemaOperation]:
    """Build *target* from an empty schema using only add operations.

    Operation order: all type definitions first (so every reference
    resolves), then supertypes, extents, attributes, keys (which may name
    inherited attributes), relationships, and operations.  Relationship
    ends are added once per pair, from the end that carries the order-by
    list if any (the auto-created inverse is then adjusted by a second
    add from the other side being unnecessary -- instead the inverse end
    is added explicitly first when both ends need non-default shapes).
    """
    from repro.ops.instance_of_ops import AddInstanceOfRelationship
    from repro.ops.part_of_ops import AddPartOfRelationship
    from repro.ops.relationship_ops import AddRelationship
    from repro.ops.attribute_ops import AddAttribute
    from repro.ops.operation_ops import AddOperation
    from repro.ops.type_ops import AddTypeDefinition
    from repro.ops.type_property_ops import (
        AddExtentName,
        AddKeyList,
        AddSupertype,
    )
    from repro.model.relationships import RelationshipKind
    from repro.ops.relationship_ops import (
        ModifyRelationshipCardinality,
        ModifyRelationshipOrderBy,
    )
    from repro.ops.part_of_ops import ModifyPartOfCardinality, ModifyPartOfOrderBy
    from repro.ops.instance_of_ops import (
        ModifyInstanceOfCardinality,
        ModifyInstanceOfOrderBy,
    )

    add_end_ops = {
        RelationshipKind.ASSOCIATION: AddRelationship,
        RelationshipKind.PART_OF: AddPartOfRelationship,
        RelationshipKind.INSTANCE_OF: AddInstanceOfRelationship,
    }
    cardinality_ops = {
        RelationshipKind.ASSOCIATION: ModifyRelationshipCardinality,
        RelationshipKind.PART_OF: ModifyPartOfCardinality,
        RelationshipKind.INSTANCE_OF: ModifyInstanceOfCardinality,
    }
    order_by_ops = {
        RelationshipKind.ASSOCIATION: ModifyRelationshipOrderBy,
        RelationshipKind.PART_OF: ModifyPartOfOrderBy,
        RelationshipKind.INSTANCE_OF: ModifyInstanceOfOrderBy,
    }

    script: list[SchemaOperation] = []
    for interface in target:
        script.append(AddTypeDefinition(interface.name))
    for interface in target:
        for supertype in interface.supertypes:
            script.append(AddSupertype(interface.name, supertype))
    for interface in target:
        if interface.extent is not None:
            script.append(AddExtentName(interface.name, interface.extent))
        for attribute in interface.attributes.values():
            script.append(
                AddAttribute(interface.name, attribute.type, attribute.name)
            )
    for interface in target:
        for key in interface.keys:
            script.append(AddKeyList(interface.name, tuple(key)))
        for operation in interface.operations.values():
            script.append(
                AddOperation(
                    interface.name, operation.return_type, operation.name,
                    operation.parameters, operation.exceptions,
                )
            )
    handled: set[frozenset[tuple[str, str]]] = set()
    for owner, end in target.relationship_pairs():
        pair = frozenset({(owner, end.name), (end.inverse_type, end.inverse_name)})
        if pair in handled:
            continue
        handled.add(pair)
        script.append(
            add_end_ops[end.kind](
                owner, end.target, end.name,
                end.inverse_type, end.inverse_name, end.order_by,
            )
        )
        # The auto-created inverse defaults to a to-one end with no
        # ordering; reshape it when the target declares otherwise.
        inverse = target.find_inverse(owner, end)
        if inverse is None:
            continue
        from repro.model.types import NamedType

        default_target = NamedType(owner)
        if end.kind is not RelationshipKind.ASSOCIATION and not end.is_to_many:
            from repro.model.types import set_of

            default_target = set_of(owner)
        if inverse.target != default_target:
            script.append(
                cardinality_ops[end.kind](
                    end.target_type, inverse.name, default_target, inverse.target
                )
            )
        if inverse.order_by:
            script.append(
                order_by_ops[end.kind](
                    end.target_type, inverse.name, (), inverse.order_by
                )
            )
    return script


def delete_only_script(source: Schema) -> list[SchemaOperation]:
    """Empty *source* using only delete operations (with propagation)."""
    from repro.ops.type_ops import DeleteTypeDefinition

    return [DeleteTypeDefinition(name) for name in source.type_names()]


def full_rebuild_script(source: Schema, target: Schema) -> list[SchemaOperation]:
    """The Section 3.5 extreme case: delete everything, add everything.

    Together with propagation this reaches *any* target schema from any
    source schema using only add and delete operations -- the executable
    form of the paper's completeness argument.
    """
    return delete_only_script(source) + add_only_script(target)
