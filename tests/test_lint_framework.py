"""Framework-level tests for ``repro.lint``.

Covers the finding/baseline model (justification discipline, stale
detection, line-independent matching) and the ``python -m repro.lint``
CLI: zero non-baselined findings on the shipped tree, all six passes in
one invocation, the JSON report shape, and a seeded violation in a
copied tree failing the run via ``--root``.
"""

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint.findings import Baseline, Finding

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

EXPECTED_PASSES = {
    "spine", "effects", "read-scopes", "independence",
    "instance-impact", "silent-writes",
}


def run_lint(*argv, cwd=REPO_ROOT):
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *argv],
        capture_output=True, text=True, cwd=cwd,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )


# ----------------------------------------------------------------------
# finding / baseline model


def _finding(rule="read-scope", symbol="repro.model.validation:key_issues"):
    return Finding(
        rule=rule, path="src/x.py", line=7, symbol=symbol, message="m"
    )


def test_finding_render_anchors_file_line_rule_symbol():
    assert _finding().render() == (
        "src/x.py:7: error[read-scope] "
        "repro.model.validation:key_issues: m"
    )


def test_finding_rejects_unknown_severity():
    with pytest.raises(ValueError):
        Finding(
            rule="r", path="p", line=1, symbol="s", message="m",
            severity="fatal",
        )


def test_baseline_requires_justification(tmp_path):
    path = tmp_path / "baseline.txt"
    path.write_text(
        "# comment lines and blanks are fine\n"
        "\n"
        "read-scope repro.model.validation:key_issues\n",
        encoding="utf-8",
    )
    baseline = Baseline.load(path)
    assert baseline.entries == {}
    assert len(baseline.errors) == 1
    assert "justification" in baseline.errors[0]


def test_baseline_rejects_malformed_key_and_empty_justification(tmp_path):
    path = tmp_path / "baseline.txt"
    path.write_text(
        "read-scope -- key has only one token\n"
        "read-scope repro.model.validation:key_issues --   \n",
        encoding="utf-8",
    )
    baseline = Baseline.load(path)
    assert baseline.entries == {}
    assert len(baseline.errors) == 2


def test_baseline_split_matches_on_rule_and_symbol_not_line(tmp_path):
    path = tmp_path / "baseline.txt"
    path.write_text(
        "read-scope repro.model.validation:key_issues -- grandfathered\n"
        "silent-write repro.gone:removed -- stale entry\n",
        encoding="utf-8",
    )
    baseline = Baseline.load(path)
    assert baseline.errors == []
    moved = Finding(
        rule="read-scope", path="src/x.py", line=999,
        symbol="repro.model.validation:key_issues", message="m",
    )
    fresh = _finding(rule="cow-barrier", symbol="repro.model.interface:X.y")
    new, baselined, stale = baseline.split([moved, fresh])
    assert baselined == [moved]  # line moved, key still matches
    assert new == [fresh]
    assert stale == ["silent-write repro.gone:removed"]


def test_shipped_baseline_entries_all_carry_justifications():
    baseline = Baseline.load(REPO_ROOT / "tools" / "lint_baseline.txt")
    assert baseline.errors == []
    for key, justification in baseline.entries.items():
        assert justification, f"baseline entry {key!r} lacks a justification"


# ----------------------------------------------------------------------
# CLI


def test_cli_shipped_tree_is_clean():
    result = run_lint()
    assert result.returncode == 0, result.stdout + result.stderr
    assert "0 error(s)" in result.stdout


def test_cli_list_names_all_six_passes():
    result = run_lint("--list")
    assert result.returncode == 0
    listed = {
        line.split()[0]
        for line in result.stdout.splitlines()
        if line and not line.startswith(" ")
    }
    assert listed == EXPECTED_PASSES


def test_cli_json_report_shape(tmp_path):
    out = tmp_path / "lint-report.json"
    result = run_lint("--json", "--output", str(out))
    assert result.returncode == 0, result.stdout + result.stderr
    report = json.loads(result.stdout)
    assert report == json.loads(out.read_text(encoding="utf-8"))
    assert report["findings"] == []
    assert report["summary"]["errors"] == 0
    assert {p["id"] for p in report["passes"]} == EXPECTED_PASSES
    # the three grandfathered silent-writes surface as baselined entries
    assert report["summary"]["baselined"] == len(report["baselined"]) == 3
    assert all(f["rule"] == "silent-write" for f in report["baselined"])


def test_cli_single_pass_selection():
    result = run_lint("--pass", "spine")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "0 error(s)" in result.stdout
    assert "baselined" in result.stdout


def test_cli_unknown_pass_is_usage_error():
    result = run_lint("--pass", "nonesuch")
    assert result.returncode == 2
    assert "nonesuch" in result.stderr


def test_cli_missing_root_is_load_error(tmp_path):
    result = run_lint("--root", str(tmp_path / "nowhere"))
    assert result.returncode == 2
    assert "cannot load" in result.stderr


def test_cli_malformed_baseline_fails_the_run(tmp_path):
    bad = tmp_path / "baseline.txt"
    bad.write_text("read-scope some:symbol\n", encoding="utf-8")
    result = run_lint("--baseline", str(bad), "--pass", "spine")
    assert result.returncode == 1
    assert "justification" in result.stdout


@pytest.fixture()
def seeded_tree(tmp_path):
    """Copy of the source tree with a read-scope widening seeded in."""
    root = tmp_path / "seeded"
    shutil.copytree(SRC / "repro", root / "repro")
    validation = root / "repro" / "model" / "validation.py"
    with validation.open("a", encoding="utf-8") as fh:
        fh.write(
            "\n\n"
            "def isa_cycle_extra(schema, interface):\n"
            "    for key in interface.keys:\n"
            '        yield Issue("isa-cycle", SEVERITY_ERROR, '
            'interface.name, "seeded widening")\n'
        )
    return root


def test_cli_seeded_read_scope_widening_fails_the_run(seeded_tree):
    """A rule reading outside its declared RULE_SCOPES aspects exits 1."""
    result = run_lint(
        "--root", str(seeded_tree), "--pass", "read-scopes", "--json"
    )
    assert result.returncode == 1, result.stdout + result.stderr
    report = json.loads(result.stdout)
    rules = {f["rule"] for f in report["findings"]}
    assert rules == {"read-scope"}
    seeded = [
        f for f in report["findings"]
        if "isa_cycle_extra" in f["message"]
    ]
    assert seeded, report["findings"]
    assert "keys" in seeded[0]["message"]
    assert seeded[0]["path"].endswith("validation.py")
    assert seeded[0]["line"] > 0


def test_cli_seeded_cow_violation_fails_the_run(tmp_path):
    """Dropping a _cow_barrier() from a public mutator exits 1."""
    root = tmp_path / "seeded"
    shutil.copytree(SRC / "repro", root / "repro")
    interface = root / "repro" / "model" / "interface.py"
    text = interface.read_text(encoding="utf-8")
    assert text.count("self._cow_barrier()") > 1
    interface.write_text(
        text.replace("self._cow_barrier()", "pass", 1), encoding="utf-8"
    )
    result = run_lint("--root", str(root), "--pass", "spine", "--json")
    assert result.returncode == 1, result.stdout + result.stderr
    report = json.loads(result.stdout)
    assert any(f["rule"] == "cow-barrier" for f in report["findings"])
