"""End-to-end scenarios straight from the paper's narrative."""

import pytest

from repro.analysis.diff import ChangeStatus
from repro.catalog import (
    CORRESPONDENCE_SIMPLIFICATION_SCRIPT,
    FIGURE7_ELABORATION_SCRIPT,
    university_schema,
)
from repro.designer.cli import run_commands
from repro.designer.session import DesignSession
from repro.ops.base import ConstraintViolation
from repro.ops.language import parse_script
from repro.repository.persistence import load_repository, save_repository
from repro.repository.repository import SchemaRepository


class TestFigure7Elaboration:
    """Section 3.4: elaborate the Course Offering wagon wheel with a
    class schedule built from course offerings (Figure 3 -> Figure 7)."""

    def test_full_design_cycle(self):
        session = DesignSession(
            SchemaRepository(university_schema(), custom_name="fig7")
        )
        session.select("ww:Course_Offering")
        for operation in parse_script(FIGURE7_ELABORATION_SCRIPT):
            # The Schedule-related operations are wagon wheel material.
            assert session.modify(operation.to_text()), session.feedback.render()
        deliverables = session.finish()
        custom = deliverables.custom_schema
        schedule = custom.get("Schedule")
        assert schedule.get_relationship("consists_of").target_type == (
            "Course_Offering"
        )
        added = {entry.path for entry in deliverables.mapping.added()}
        assert "Schedule" in added
        assert "Course_Offering.scheduled_in" in added

    def test_mapping_reuse_stays_high(self):
        repository = SchemaRepository(university_schema(), custom_name="fig7")
        for operation in parse_script(FIGURE7_ELABORATION_SCRIPT):
            repository.apply(operation)
        mapping = repository.generate_mapping()
        assert mapping.reuse_ratio() == 1.0  # elaboration deletes nothing


class TestCorrespondenceSimplification:
    """Section 3.4: correspondence-only courses drop the time slot and
    the room attribute."""

    def test_simplification_via_cli(self):
        session = DesignSession(
            SchemaRepository(university_schema(), custom_name="corr")
        )
        outputs = run_commands(
            session,
            [
                "select ww:Course_Offering",
                "apply delete_attribute(Course_Offering, room)",
                "apply delete_type_definition(Time_Slot)",
                "check",
                "finish correspondence_university",
            ],
        )
        assert outputs[1].startswith("ok:")
        assert outputs[2].startswith("ok:")
        custom = session.repository.custom_schema
        assert custom is not None
        assert "Time_Slot" not in custom
        assert "room" not in custom.get("Course_Offering").attributes

    def test_deleted_constructs_tracked_in_mapping(self):
        repository = SchemaRepository(university_schema(), custom_name="corr")
        for operation in parse_script(CORRESPONDENCE_SIMPLIFICATION_SCRIPT):
            repository.apply(operation)
        mapping = repository.generate_mapping()
        deleted = {entry.path for entry in mapping.deleted()}
        assert "Time_Slot" in deleted
        assert "Course_Offering.room" in deleted
        # The relationship ends to Time_Slot cascade away and are
        # recorded too.
        assert "Course_Offering.offered_during" in deleted


class TestPropagationAblation:
    """What the propagation rules buy: without them, the designer must
    hand-order every dependent deletion."""

    def test_bare_delete_fails_without_propagation(self):
        repository = SchemaRepository(university_schema(), custom_name="abl")
        with pytest.raises(ConstraintViolation):
            repository.apply(
                parse_script("delete_type_definition(Time_Slot)")[0],
                propagate=False,
            )

    def test_manual_cascade_order_matches_propagation(self):
        manual = SchemaRepository(university_schema(), custom_name="manual")
        manual.apply(
            parse_script(
                "delete_relationship(Course_Offering, offered_during)"
            )[0],
            propagate=False,
        )
        manual.apply(
            parse_script("delete_type_definition(Time_Slot)")[0],
            propagate=False,
        )
        automatic = SchemaRepository(university_schema(), custom_name="auto")
        automatic.apply(
            parse_script("delete_type_definition(Time_Slot)")[0]
        )
        from repro.model.fingerprint import schemas_equal

        assert schemas_equal(
            manual.workspace.schema, automatic.workspace.schema
        )


class TestSessionPersistence:
    def test_design_session_survives_save_and_load(self, tmp_path):
        repository = SchemaRepository(university_schema(), custom_name="fig7")
        for operation in parse_script(FIGURE7_ELABORATION_SCRIPT):
            repository.apply(operation, concept_id="ww:Course_Offering")
        path = tmp_path / "session.json"
        save_repository(repository, path)
        restored = load_repository(path)
        from repro.model.fingerprint import schemas_equal

        assert schemas_equal(
            restored.workspace.schema, repository.workspace.schema
        )
        # Undo still works on the restored session.
        restored.undo()
        assert len(restored.workspace.log) == len(repository.workspace.log) - 1


class TestInteroperation:
    """Section 5: systems built from one shrink wrap schema interoperate
    through their mappings (common objects)."""

    def test_two_customizations_share_common_objects(self):
        first = SchemaRepository(university_schema(), custom_name="campus_a")
        first.apply(parse_script("delete_type_definition(Book)")[0])
        second = SchemaRepository(university_schema(), custom_name="campus_b")
        second.apply(
            parse_script("delete_attribute(Course_Offering, room)")[0]
        )
        first_mapping = first.generate_mapping()
        second_mapping = second.generate_mapping()
        first_common = {
            e.path
            for e in first_mapping.corresponding()
            if e.status is not ChangeStatus.MOVED
        }
        second_common = {
            e.path
            for e in second_mapping.corresponding()
            if e.status is not ChangeStatus.MOVED
        }
        shared = first_common & second_common
        # The semantically identical constructs across both derived
        # systems include the whole Course/Student machinery.
        assert "Course.number" in shared
        assert "Student.takes" in shared
        assert "Book.isbn" not in shared
