"""The invariant registry: machine-checkable paper guarantees.

The paper's contract is that the modification-operation language is
*closed* and *consistency-preserving*: every admissible edit of a
concept schema leaves the workspace schema structurally valid (Table 1,
Appendix A), name-equivalent to its shrink wrap origin, and semantically
stable, while propagation and undo/redo are lossless.  Each
:class:`Invariant` here encodes one such clause as a whole-schema (or
whole-workspace) predicate; the differential fuzzer
(:mod:`repro.verify.fuzzer`) re-checks the full registry after every
operation of a randomized sequence.

Invariants come in two tiers:

* ``cheap`` -- structural predicates and index-vs-scan differentials,
  checked after every fuzz step;
* ``expensive`` -- whole-schema round trips (ODL, decomposition,
  mapping, log replay), checked every few steps and at sequence end.

Adding an invariant: write a generator function yielding one message
string per violation, decorate it with :func:`invariant`, and it is
checked everywhere automatically (fuzzer, CLI, tests).  Schema-level
checks receive ``(schema, context)``; workspace-level checks (decorated
with ``workspace_invariant``) receive the live
:class:`~repro.repository.workspace.Workspace`.

**O(changed) sweeps.**  Passing ``touched`` (the interface names the
spine recorded since the previous sweep) to :func:`check_schema` /
:func:`check_workspace` switches to scoped mode: invariants with a
:func:`scoped_invariant` variant check only the touched closure
(touched + ISA descendants + referencers), the O(1)/O(history)
invariants in :data:`ALWAYS_FULL` still run whole, and everything else
is *deferred* -- the caller owes one full-registry sweep at sequence
end (the fuzzer's ``final_check``).  That makes per-step verification
cost proportional to the plan, not the schema, which is what lets
``make fuzz --large-seeds`` keep both tiers on at 10k types
(DESIGN.md §5i).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.concepts.decompose import decompose, reconstruct
from repro.knowledge.consistency import structural_feedback
from repro.knowledge.feedback import FeedbackLevel
from repro.model import index as index_module
from repro.model.columnar import DictAdjacency, adjacency_differential
from repro.model.fingerprint import schema_fingerprint, schemas_equal
from repro.model.schema import Schema
from repro.model.relationships import RelationshipKind
from repro.model.validation import (
    SEVERITY_ERROR,
    _find_cycle,
    cardinality_issues,
    check_cardinality_roles,
    check_dangling_types,
    check_instance_of_cycles,
    check_inverses,
    check_isa_cycles,
    check_keys,
    check_order_by,
    check_part_of_cycles,
    dangling_type_issues,
    instance_of_cycle_issue,
    inverse_issues,
    isa_cycle_issue,
    isa_successors,
    key_issues,
    order_by_issues,
    part_of_cycle_issue,
    validate_schema,
)
from repro.model.errors import SchemaError
from repro.ops.base import OperationContext, OperationError
from repro.repository.mapping import generate_mapping
from repro.repository.workspace import Workspace

TIER_CHEAP = "cheap"
TIER_EXPENSIVE = "expensive"


@dataclass(frozen=True)
class Violation:
    """One invariant failure: which contract broke and how."""

    invariant: str
    message: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.message}"


SchemaCheck = Callable[[Schema, OperationContext], Iterator[str]]
WorkspaceCheck = Callable[[Workspace], Iterator[str]]


@dataclass(frozen=True)
class Invariant:
    """One registered whole-schema / whole-workspace predicate."""

    name: str
    clause: str  # the paper clause this invariant encodes
    tier: str
    check: SchemaCheck | WorkspaceCheck
    scope: str  # "schema" | "workspace"


#: Every registered invariant, in registration order.
INVARIANTS: list[Invariant] = []

#: Scoped (O(changed)) variants keyed by invariant name.  A scoped
#: check receives ``(schema, context, scoped)`` where ``scoped`` is the
#: sorted, defined touched closure (touched names + their ISA
#: descendants + their referencers) and must verify the same clause
#: restricted to that neighbourhood.
SCOPED_CHECKS: dict[str, Callable[..., Iterator[str]]] = {}

#: Invariants that run in full even during a scoped sweep: they are
#: O(1)/O(history) in the schema size, so skipping them buys nothing
#: and they anchor the sweep (generation bookkeeping, history shape).
ALWAYS_FULL = frozenset({"spine-generation", "history-shape"})


def scoped_invariant(name: str):
    """Register the O(changed) variant of the invariant *name*."""

    def decorator(check: Callable[..., Iterator[str]]):
        SCOPED_CHECKS[name] = check
        return check

    return decorator


def touched_closure(schema: Schema, touched: Iterable[str]) -> list[str]:
    """The defined neighbourhood a change to *touched* can affect.

    Touched names plus their ISA descendants (inherited keys, order-by
    and extent visibility flow down the hierarchy) plus everything
    referencing them (dangling/inverse checks judge the *referencing*
    end), filtered to currently-defined interfaces and sorted for
    deterministic reporting.  Cost is O(closure), served by the
    columnar adjacency -- never O(schema).
    """
    adjacency = schema.index.adjacency
    adjacency.ensure_fresh()
    seeds = set(touched)
    closure = set(seeds)
    closure |= adjacency.descendants_closure(seeds)
    for name in seeds:
        closure.update(adjacency.referencers_of(name))
    return sorted(name for name in closure if name in schema.interfaces)


def invariant(name: str, clause: str, tier: str = TIER_CHEAP):
    """Register a schema-level invariant check function."""

    def decorator(check: SchemaCheck) -> SchemaCheck:
        INVARIANTS.append(Invariant(name, clause, tier, check, "schema"))
        return check

    return decorator


def workspace_invariant(name: str, clause: str, tier: str = TIER_CHEAP):
    """Register a workspace-level invariant check function."""

    def decorator(check: WorkspaceCheck) -> WorkspaceCheck:
        INVARIANTS.append(Invariant(name, clause, tier, check, "workspace"))
        return check

    return decorator


def check_schema(
    schema: Schema,
    context: OperationContext | None = None,
    tiers: Iterable[str] = (TIER_CHEAP, TIER_EXPENSIVE),
    names: Iterable[str] | None = None,
    touched: Iterable[str] | None = None,
) -> list[Violation]:
    """Run every (selected) schema-level invariant over *schema*.

    With *touched* (interface names the spine recorded since the last
    sweep) the run is *scoped*: invariants with a registered
    :data:`SCOPED_CHECKS` variant verify only the touched closure,
    :data:`ALWAYS_FULL` invariants run whole, and the rest are skipped
    -- the caller owes a full sweep at sequence end.
    """
    context = context or OperationContext()
    wanted = None if names is None else set(names)
    tier_set = set(tiers)
    scoped_names: list[str] | None = None
    if touched is not None:
        scoped_names = touched_closure(schema, touched)
    violations: list[Violation] = []
    for inv in INVARIANTS:
        if inv.scope != "schema" or inv.tier not in tier_set:
            continue
        if wanted is not None and inv.name not in wanted:
            continue
        if scoped_names is None:
            messages = inv.check(schema, context)
        else:
            scoped = SCOPED_CHECKS.get(inv.name)
            if scoped is not None:
                messages = scoped(schema, context, scoped_names)
            elif inv.name in ALWAYS_FULL:
                messages = inv.check(schema, context)
            else:
                continue  # deferred to the caller's final full sweep
        violations.extend(Violation(inv.name, message) for message in messages)
    return violations


def check_workspace(
    workspace: Workspace,
    tiers: Iterable[str] = (TIER_CHEAP, TIER_EXPENSIVE),
    names: Iterable[str] | None = None,
    touched: Iterable[str] | None = None,
) -> list[Violation]:
    """Run schema invariants on the workspace schema plus history checks.

    *touched* scopes the sweep exactly as in :func:`check_schema`;
    workspace-level invariants without a scoped variant are skipped in
    scoped mode except those in :data:`ALWAYS_FULL`.
    """
    violations = check_schema(
        workspace.schema, workspace.context, tiers=tiers, names=names,
        touched=touched,
    )
    wanted = None if names is None else set(names)
    tier_set = set(tiers)
    for inv in INVARIANTS:
        if inv.scope != "workspace" or inv.tier not in tier_set:
            continue
        if wanted is not None and inv.name not in wanted:
            continue
        if touched is not None and inv.name not in ALWAYS_FULL:
            continue
        violations.extend(
            Violation(inv.name, message) for message in inv.check(workspace)
        )
    return violations


def describe_registry() -> str:
    """One line per invariant: name, tier, scope, paper clause."""
    lines = []
    for inv in INVARIANTS:
        lines.append(
            f"{inv.name:32s} {inv.tier:9s} {inv.scope:9s} {inv.clause}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Structural invariants (Appendix A closure: ops keep the schema valid)
# ----------------------------------------------------------------------


def _rule_messages(rule, schema: Schema) -> Iterator[str]:
    for issue in rule(schema):
        if issue.severity == SEVERITY_ERROR:
            yield str(issue)


@invariant(
    "dangling-types",
    "Section 3.1: every type name used by a construct is defined",
)
def _check_dangling(schema, context):
    yield from _rule_messages(check_dangling_types, schema)


@invariant(
    "inverse-pairing",
    "Section 3.1: relationship ends always pair with a declared inverse",
)
def _check_inverse_pairing(schema, context):
    yield from _rule_messages(check_inverses, schema)


@invariant(
    "hierarchy-one-to-many",
    "Section 3.1: part-of / instance-of traversals are implicitly 1:N",
)
def _check_one_to_many(schema, context):
    yield from _rule_messages(check_cardinality_roles, schema)


@invariant(
    "isa-acyclic",
    "Section 3.2: the generalization hierarchy is a DAG",
)
def _check_isa_acyclic(schema, context):
    yield from _rule_messages(check_isa_cycles, schema)


@invariant(
    "part-of-acyclic",
    "Section 3.1: the aggregation (parts explosion) graph is a DAG",
)
def _check_part_of_acyclic(schema, context):
    yield from _rule_messages(check_part_of_cycles, schema)


@invariant(
    "instance-of-acyclic",
    "Section 3.1: the instance-of (version) graph is a DAG",
)
def _check_instance_of_acyclic(schema, context):
    yield from _rule_messages(check_instance_of_cycles, schema)


@invariant(
    "keys-resolve",
    "Table 2: key lists name attributes available on the type",
)
def _check_keys_resolve(schema, context):
    yield from _rule_messages(check_keys, schema)


@invariant(
    "order-by-resolve",
    "Table 3: order-by lists name attributes of the target type",
)
def _check_order_by_resolve(schema, context):
    yield from _rule_messages(check_order_by, schema)


@invariant(
    "extent-unique",
    "Table 2: extent names are globally unique across the schema",
)
def _check_extent_unique(schema, context):
    owners: dict[str, str] = {}
    for interface in schema:
        if interface.extent is None:
            continue
        if interface.extent in owners:
            yield (
                f"extent {interface.extent!r} is declared by both "
                f"{owners[interface.extent]!r} and {interface.name!r}"
            )
        else:
            owners[interface.extent] = interface.name


@invariant(
    "feedback-error-free",
    "Abstract: consistency checks report no error-level feedback",
)
def _check_feedback_clean(schema, context):
    for message in structural_feedback(schema):
        if message.level is FeedbackLevel.ERROR:
            yield f"designer feedback error: {message}"


# ----------------------------------------------------------------------
# Validation differential (incremental engine == full-scan reference)
# ----------------------------------------------------------------------


@invariant(
    "incremental-vs-full-validation",
    "DESIGN 5d: the incremental validation cache returns byte-for-byte "
    "the full scan's issue list",
)
def _check_incremental_validation(schema, context):
    incremental = schema.validation.validate()
    full = validate_schema(schema)
    if incremental == full:
        return
    missing = [issue for issue in full if issue not in incremental]
    spurious = [issue for issue in incremental if issue not in full]
    if not missing and not spurious:
        yield (
            "incremental validation reports the full scan's issues in a "
            f"different order ({len(full)} issues)"
        )
        return
    for issue in missing[:3]:
        yield f"incremental validation missed: {issue}"
    for issue in spurious[:3]:
        yield f"incremental validation fabricated: {issue}"
    rest = len(missing) + len(spurious) - len(missing[:3]) - len(spurious[:3])
    if rest:
        yield f"... and {rest} more validation differences"


# ----------------------------------------------------------------------
# Index differentials (every indexed query == its scan_* reference)
# ----------------------------------------------------------------------

#: Default for :func:`set_differential_stride`.  Above this many types
#: the per-type differentials sample instead of sweeping exhaustively:
#: each per-type probe calls an O(types) scan_* reference, so the
#: exhaustive sweep is quadratic -- fine for catalog and test subjects,
#: prohibitive on the 1k-10k-type fuzz profile.
DIFFERENTIAL_STRIDE_DEFAULT = 256

_differential_stride = DIFFERENTIAL_STRIDE_DEFAULT
_sampling_events = 0


def set_differential_stride(threshold: int | None) -> int:
    """Set the per-type differential sampling threshold; return the old.

    ``0`` or ``None`` disables sampling entirely (exhaustive per-type
    probes at any size); the fuzzer CLI exposes this as
    ``--differential-stride``.
    """
    global _differential_stride
    previous = _differential_stride
    _differential_stride = int(threshold) if threshold else 0
    return previous


def differential_stride() -> int:
    """The active sampling threshold (0 means exhaustive)."""
    return _differential_stride


def consume_sampling_events() -> int:
    """Drain and return the count of sampled (non-exhaustive) sweeps.

    The fuzz runner reads this after each run to print a coverage note
    -- no silent caps: when probes were sampled, the summary says so.
    """
    global _sampling_events
    events, _sampling_events = _sampling_events, 0
    return events


def _stride_sample(names: list[str], phase: int) -> list[str]:
    """*names*, or a deterministic stride sample past the threshold.

    The stride phase rotates with *phase* (the schema generation), so
    successive sweeps of a fuzz run cross different residues of the
    declaration order while each individual sweep stays linear.  For a
    fixed schema state the sample is deterministic -- replaying a
    trace checks exactly the same types, which the shrinker relies on.
    """
    global _sampling_events
    count = len(names)
    threshold = _differential_stride
    if not threshold or count <= threshold:
        return names
    _sampling_events += 1
    stride = -(-count // threshold)
    return names[phase % stride :: stride]


def _sampled_type_names(schema) -> list[str]:
    """All type names, or a deterministic stride sample at scale."""
    return _stride_sample(schema.type_names(), schema.generation)


@invariant(
    "index-generalization-vs-scan",
    "DESIGN 5b: indexed ISA queries equal the full-scan reference "
    "(per-type probes sampled past the differential stride threshold)",
)
def _check_index_generalization(schema, context):
    for name in _sampled_type_names(schema):
        indexed = schema.subtypes(name)
        scanned = index_module.scan_subtypes(schema, name)
        if indexed != scanned:
            yield f"subtypes({name!r}): index {indexed!r} != scan {scanned!r}"
        if schema.descendants(name) != index_module.scan_descendants(schema, name):
            yield f"descendants({name!r}): index != scan"
        if schema.ancestors(name) != index_module.scan_ancestors(schema, name):
            yield f"ancestors({name!r}): index != scan"
    if schema.generalization_roots() != index_module.scan_generalization_roots(
        schema
    ):
        yield "generalization_roots(): index != scan"


@invariant(
    "index-aggregation-vs-scan",
    "DESIGN 5b: indexed part-of queries equal the full-scan reference "
    "(per-type probes sampled past the differential stride threshold)",
)
def _check_index_aggregation(schema, context):
    scanned_edges = index_module.scan_link_edges(
        schema, RelationshipKind.PART_OF
    )
    if schema.part_of_edges() != scanned_edges:
        yield "part_of_edges(): index != scan"
    for name in _sampled_type_names(schema):
        if schema.parts(name) != index_module.scan_parts(schema, name):
            yield f"parts({name!r}): index != scan"
        if schema.wholes(name) != index_module.scan_wholes(schema, name):
            yield f"wholes({name!r}): index != scan"
    if schema.aggregation_roots() != index_module.scan_aggregation_roots(schema):
        yield "aggregation_roots(): index != scan"


@invariant(
    "index-instance-of-vs-scan",
    "DESIGN 5b: indexed instance-of queries equal the full-scan reference",
)
def _check_index_instance_of(schema, context):
    scanned_edges = index_module.scan_link_edges(
        schema, RelationshipKind.INSTANCE_OF
    )
    if schema.instance_of_edges() != scanned_edges:
        yield "instance_of_edges(): index != scan"
    if schema.instance_of_roots() != index_module.scan_instance_of_roots(schema):
        yield "instance_of_roots(): index != scan"


@invariant(
    "index-pairs-vs-scan",
    "DESIGN 5b: the indexed relationship listing equals the full scan",
)
def _check_index_pairs(schema, context):
    if schema.relationship_pairs() != index_module.scan_relationship_pairs(
        schema
    ):
        yield "relationship_pairs(): index != scan"


@invariant(
    "columnar-vs-dict-adjacency",
    "DESIGN 5i: the flat-array adjacency (ids, free list, parallel "
    "columns) answers exactly as the retained dict reference spec",
)
def _check_columnar_adjacency(schema, context):
    reference = DictAdjacency(schema)
    yield from adjacency_differential(schema.index.adjacency, reference)


# ----------------------------------------------------------------------
# Mutation-spine invariants (the stream is complete and sufficient)
# ----------------------------------------------------------------------


@invariant(
    "spine-generation",
    "DESIGN 5e: the schema's generation is derived from the mutation "
    "spine (generation == log.seq, records dense in seq)",
)
def _check_spine_generation(schema, context):
    log = schema.log
    if schema.generation != log.seq:
        yield f"generation {schema.generation} != spine seq {log.seq}"
    if len(log) != log.seq:
        yield (
            f"spine holds {len(log)} records but seq is {log.seq}; "
            "records are no longer dense"
        )


@invariant(
    "spine-replay",
    "DESIGN 5e: replaying the mutation log from an empty schema "
    "reproduces the live schema's fingerprint (mutations are reified "
    "completely)",
    tier=TIER_EXPENSIVE,
)
def _check_spine_replay(schema, context):
    log = schema.log
    if log.lossy:
        return  # an out-of-band touch was recorded; replay is undefined
    try:
        rebuilt = log.replay(schema.name)
    except Exception as error:  # noqa: BLE001 - any escape is the finding
        yield f"replaying the mutation log raised: {error}"
        return
    if schema_fingerprint(rebuilt) != schema_fingerprint(schema):
        yield (
            "replaying the mutation log from empty does not reproduce "
            "the live schema"
        )
    if rebuilt.type_names() != schema.type_names():
        yield (
            "replaying the mutation log does not reproduce declaration "
            "order"
        )


@invariant(
    "spine-subscribers-vs-rebuild",
    "DESIGN 5e: every subscriber's derived state equals a from-scratch "
    "rebuild -- fresh index maps and a fresh full validation match the "
    "live schema's",
    tier=TIER_EXPENSIVE,
)
def _check_spine_subscribers(schema, context):
    fresh = schema.copy(f"{schema.name}_rebuild")
    if schema.index.subtype_map() != fresh.index.subtype_map():
        yield "live subtype_map differs from a from-scratch rebuild"
    if schema.index.parts_map() != fresh.index.parts_map():
        yield "live parts_map differs from a from-scratch rebuild"
    if schema.index.instance_map() != fresh.index.instance_map():
        yield "live instance_map differs from a from-scratch rebuild"
    if schema.index.declaration_order() != fresh.index.declaration_order():
        yield "live declaration_order differs from a from-scratch rebuild"
    live_issues = schema.validation.validate()
    fresh_issues = fresh.validation.validate()
    if live_issues != fresh_issues:
        yield (
            "live validation cache differs from a fresh cache's full "
            f"build ({len(live_issues)} vs {len(fresh_issues)} issues)"
        )


@invariant(
    "cow-vs-eager-copy",
    "DESIGN 5j: a copy-on-write fork is indistinguishable from the "
    "eager-copy reference spec -- structurally equal when fresh, and "
    "independently mutable in both directions after divergence",
    tier=TIER_EXPENSIVE,
)
def _check_cow_vs_eager_copy(schema, context):
    from repro.model.interface import InterfaceDef
    from repro.model.types import ScalarType
    from repro.ops.attribute_ops import AddAttribute

    # Everything below runs on a private eager copy; the live fuzzed
    # schema, its spine, and its undo history are never touched.
    base = schema.copy(f"{schema.name}_cow_base")
    eager = base.copy(f"{base.name}_eager")
    fork = base.fork(f"{base.name}_fork")
    if not schemas_equal(fork, eager):
        yield "a fresh CoW fork differs structurally from an eager copy"
        return
    if fork.type_names() != eager.type_names():
        yield "a fresh CoW fork does not preserve declaration order"
    names = base.type_names()
    if not names:
        return
    base_print = schema_fingerprint(base)

    # Fork-side divergence: an op-level apply/undo/redo cycle plus a
    # delete/re-add of the same type name (ident reuse in the columnar
    # free list) must leave the base -- and its eager copy -- untouched.
    victim = names[0]
    operation = AddAttribute(victim, ScalarType("long"), "cow_probe")
    undo = operation.apply(fork)
    undo()
    operation.apply(fork)
    if "cow_probe" not in fork.get(victim).attributes:
        yield "op-level undo/redo on a fork lost the redone attribute"
    fork.remove_interface(victim)
    fork.add_interface(InterfaceDef(victim))
    if schema_fingerprint(base) != base_print:
        yield (
            f"fork-side writes (attribute probe, undo/redo, delete/"
            f"re-add of {victim!r}) leaked into the base schema"
        )
    if not schemas_equal(base, eager):
        yield (
            "after fork-side divergence the base no longer equals its "
            "eager copy"
        )

    # Base-side divergence: parent writes must not reach the fork.
    victim = names[-1]
    fork_print = schema_fingerprint(fork)
    base.edit(victim).set_extent("cow_probe_extent")
    base.remove_interface(victim)
    base.add_interface(InterfaceDef(victim))
    if schema_fingerprint(fork) != fork_print:
        yield (
            f"base-side writes (extent probe, delete/re-add of "
            f"{victim!r}) leaked into the fork"
        )


# ----------------------------------------------------------------------
# Round-trip invariants (expensive tier)
# ----------------------------------------------------------------------


@invariant(
    "odl-round-trip",
    "Section 3.1: printed extended ODL re-parses to the same schema",
    tier=TIER_EXPENSIVE,
)
def _check_odl_round_trip(schema, context):
    from repro.odl.parser import parse_schema
    from repro.odl.printer import print_schema

    text = print_schema(schema)
    try:
        parsed = parse_schema(text, name=schema.name)
    except Exception as error:  # noqa: BLE001 - any escape is the finding
        yield f"printed ODL does not re-parse: {error}"
        return
    if not schemas_equal(schema, parsed):
        yield "printer -> parser round trip changed the schema"
    elif print_schema(parsed) != text:
        yield "printer -> parser -> printer is not idempotent"


@invariant(
    "decomposition-union",
    "Section 3.3.1: the union of all concept schemas is the schema",
    tier=TIER_EXPENSIVE,
)
def _check_decomposition_union(schema, context):
    try:
        rebuilt = reconstruct(decompose(schema))
    except Exception as error:  # noqa: BLE001
        yield f"decompose/reconstruct raised: {error}"
        return
    if not schemas_equal(schema, rebuilt):
        yield "reconstruct(decompose(schema)) differs from schema"


@invariant(
    "name-equivalence-mapping",
    "Section 5: the mapping derives from name equivalence; a schema maps "
    "onto its copy with every construct unchanged",
    tier=TIER_EXPENSIVE,
)
def _check_name_equivalence(schema, context):
    mapping = generate_mapping(schema, schema.copy(f"{schema.name}_verify"))
    if mapping.added() or mapping.deleted():
        yield (
            "self-mapping reports "
            f"{len(mapping.added())} added / {len(mapping.deleted())} "
            "deleted constructs"
        )
    if mapping.entries and mapping.reuse_ratio() != 1.0:
        yield f"self-mapping reuse ratio is {mapping.reuse_ratio()}, not 1.0"
    partition = len(mapping.corresponding()) + len(mapping.added()) + len(
        mapping.deleted()
    )
    if partition != len(mapping.entries):
        yield (
            "mapping entries do not partition into corresponding/added/"
            f"deleted ({partition} != {len(mapping.entries)})"
        )


# ----------------------------------------------------------------------
# Workspace (history) invariants
# ----------------------------------------------------------------------


@workspace_invariant(
    "history-shape",
    "Figure 1: the workspace log mirrors exactly the undoable steps",
)
def _check_history_shape(workspace):
    if workspace.undo_depth != len(workspace.log):
        yield (
            f"undo_depth {workspace.undo_depth} != log length "
            f"{len(workspace.log)}"
        )
    for entry in workspace.log:
        if len(entry.undos) != len(entry.plan):
            yield (
                f"log entry {entry.describe()!r} has {len(entry.plan)} plan "
                f"steps but {len(entry.undos)} undo closures"
            )


@workspace_invariant(
    "log-replay",
    "Section 5 activity 8: the recorded script replays to the same "
    "custom schema (the log is the customization)",
    tier=TIER_EXPENSIVE,
)
def _check_log_replay(workspace):
    replay = workspace.reference.copy("verify_replay")
    context = OperationContext(reference=workspace.reference)
    try:
        for step in workspace.applied_operations():
            step.apply(replay, context)
    except Exception as error:  # noqa: BLE001
        yield f"replaying the applied plan steps raised: {error}"
        return
    if schema_fingerprint(replay) != schema_fingerprint(workspace.schema):
        yield "replaying the log does not reproduce the workspace schema"


@workspace_invariant(
    "undo-redo-identity",
    "Appendix A: undo restores the pre-operation schema and redo the "
    "post-operation schema, exactly (fingerprint identity)",
    tier=TIER_EXPENSIVE,
)
def _check_undo_redo_identity(workspace):
    if not workspace.log:
        return
    before = schema_fingerprint(workspace.schema)
    entry = workspace.undo_last()
    assert entry is not None
    try:
        redone = workspace.redo()
    except Exception as error:  # noqa: BLE001
        yield (
            f"redo of just-undone step {entry.describe()!r} raised: {error}"
        )
        return
    if redone is None:
        yield (
            f"redo after undo of {entry.describe()!r} found an empty redo "
            "stack"
        )
        return
    after = schema_fingerprint(workspace.schema)
    if after != before:
        yield (
            f"undo+redo of {entry.describe()!r} changed the schema "
            "fingerprint"
        )


@workspace_invariant(
    "plan-analyzer-differential",
    "DESIGN 5f: pre-flight diagnostics are exactly the dynamically "
    "failing ops -- valid plans analyze clean, batched apply_plan "
    "equals naive per-op application, and every diagnostic on a "
    "perturbed plan reproduces as a real failure",
    tier=TIER_EXPENSIVE,
)
def _check_plan_analyzer(workspace):
    from repro.analysis.plan import analyze_plan
    from repro.workload.generator import generate_operations

    schema = workspace.schema
    if len(schema) < 2:
        return
    seed = schema.generation * 31 + len(schema)
    try:
        plan = generate_operations(schema, 4, seed=seed)
    except RuntimeError:
        return  # too constrained to derive a plan here; nothing to check
    analysis = analyze_plan(plan, schema)
    for diagnostic in analysis.diagnostics:
        yield (
            "generated (valid) plan drew a pre-flight diagnostic: "
            f"{diagnostic}"
        )
    if analysis.diagnostics:
        return
    naive = Workspace(schema, "plan_naive", validate_each_step=False)
    try:
        for operation in plan:
            naive.apply(operation)
    except (OperationError, SchemaError) as error:
        yield f"pre-flight-clean generated plan failed to apply: {error}"
        return
    batched = Workspace(schema, "plan_batched", validate_each_step=False)
    batched.apply_plan(plan)
    if schema_fingerprint(naive.schema) != schema_fingerprint(
        batched.schema
    ):
        yield "apply_plan diverged from naive per-op application"
    if len(plan) < 2:
        return
    # Drop one op: whatever pre-flight then flags must actually fail
    # when the remaining ops run with skip-on-failure semantics.
    perturbed = list(plan)
    del perturbed[seed % len(plan)]
    verdict = analyze_plan(perturbed, schema, normalize=False)
    replay = Workspace(schema, "plan_perturbed", validate_each_step=False)
    failed: set[int] = set()
    for index, operation in enumerate(perturbed):
        try:
            replay.apply(operation)
        except (OperationError, SchemaError):
            failed.add(index)
    for diagnostic in verdict.diagnostics:
        if diagnostic.index not in failed:
            yield (
                "diagnostic on perturbed plan did not reproduce "
                f"dynamically: {diagnostic}"
            )


@workspace_invariant(
    "fork-rewind-differential",
    "Workspace docs: the fork(at=) lossy-log rewind fallback produces "
    "exactly the state a structural copy of the rewound workspace has, "
    "and leaves the workspace (history, redo stack, schema) untouched",
    tier=TIER_EXPENSIVE,
)
def _check_fork_rewind(workspace):
    import warnings

    from repro.repository.workspace import WorkspaceSnapshot

    if not workspace.log:
        return
    # Bookmark mid-history; rewinding only uses the snapshot's depth, so
    # a fabricated snapshot exercises the fallback without a lossy log.
    depth = len(workspace.log) // 2
    snapshot = WorkspaceSnapshot(
        log=workspace.schema.log,
        seq=workspace.schema.log.seq,
        depth=depth,
    )
    before = schema_fingerprint(workspace.schema)
    redo_before = workspace.redo_depth
    # The reference verdict: rewind the live workspace itself and
    # fingerprint the structural state the snapshot bookmarks.
    try:
        unwound = workspace.undo_to(snapshot)
        expected = schema_fingerprint(workspace.schema)
        for _ in range(unwound):
            workspace.redo()
    except (OperationError, SchemaError) as error:
        yield f"undo_to/redo round trip for the differential raised: {error}"
        return
    if schema_fingerprint(workspace.schema) != before:
        yield "undo_to + redo did not restore the workspace schema"
        return
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            branch = workspace._fork_by_rewind(
                "verify_rewind_fork", snapshot, "differential check"
            )
    except (OperationError, SchemaError) as error:
        yield f"fork(at=) rewind fallback raised: {error}"
        return
    if schema_fingerprint(branch.schema) != expected:
        yield (
            "fork(at=) rewind fallback diverges from a structural copy "
            "of the rewound state"
        )
    if branch.undo_depth != 0:
        yield "fork(at=) rewind fallback branch must start with no history"
    if schema_fingerprint(workspace.schema) != before:
        yield "fork(at=) rewind fallback did not restore the workspace"
    if workspace.redo_depth != redo_before:
        yield (
            "fork(at=) rewind fallback changed the redo stack "
            f"({redo_before} -> {workspace.redo_depth})"
        )



@workspace_invariant(
    "example-preservation",
    "DESIGN 5h: a behavior-preserving plan (instance-impact facet "
    "disjoint from an interface and its ancestry) keeps that "
    "interface's witness populations valid, and check_population "
    "agrees between the live evolved schema, a structural copy, and "
    "the state an undo/redo round trip restores",
    tier=TIER_EXPENSIVE,
)
def _check_example_preservation(workspace):
    from repro.examples.generator import significant_examples
    from repro.examples.preview import plan_instance_impact
    from repro.instances.check import check_population
    from repro.ops.effects import WILDCARD
    from repro.workload.generator import generate_operations
    from repro.workload.population import generate_population

    schema = workspace.schema
    if len(schema) < 2:
        return
    seed = schema.generation * 37 + len(schema)
    try:
        plan = generate_operations(schema, 3, seed=seed)
    except RuntimeError:
        return  # too constrained to derive a plan here; nothing to check
    impacted = plan_instance_impact(plan)
    if WILDCARD in impacted:
        return  # cascading family: the facet reserves the whole schema
    # An interface counts as untouched only when neither it nor any
    # ancestor is impacted -- a key or extent change on a supertype
    # legitimately re-judges the populations of every descendant.
    untouched = {
        name
        for name in schema.type_names()
        if name not in impacted and not (schema.ancestors(name) & impacted)
    }
    ordered = sorted(untouched)
    sample = ordered[:: max(1, len(ordered) // 4)][:4]
    pairs = [
        pair
        for pair in significant_examples(schema, interfaces=sample)
        if {obj.type_name for obj in pair.witness} <= untouched
    ][:4]
    scratch = Workspace(schema, "example_preservation",
                        validate_each_step=False)
    try:
        scratch.apply_plan(plan)
    except (OperationError, SchemaError):
        return  # the plan does not apply in this state; nothing to check
    after = scratch.schema
    for pair in pairs:
        issues = check_population(after, pair.witness)
        if issues:
            yield (
                f"plan with instance impact {sorted(impacted)} broke the "
                f"witness population of untouched {pair.subject}: "
                f"{issues[0]}"
            )
    pop = generate_population(after, seed=seed)
    live = [str(issue) for issue in check_population(after, pop)]
    if live:
        yield (
            "the evolved schema rejects its own generated population: "
            f"{live[0]}"
        )
    rebuilt = [str(issue) for issue in check_population(after.copy(), pop)]
    if rebuilt != live:
        yield (
            "check_population disagrees between the evolved schema and "
            "its structural copy"
        )
    undone = 0
    while scratch.log:
        scratch.undo_last()
        undone += 1
    for _ in range(undone):
        scratch.redo()
    replayed = [str(issue) for issue in check_population(scratch.schema, pop)]
    if replayed != live:
        yield (
            "check_population disagrees after an undo/redo round trip "
            "of the plan"
        )


# ----------------------------------------------------------------------
# Scoped (O(changed)) variants -- DESIGN 5i
#
# Each verifies its invariant's clause restricted to the touched
# closure, never walking the whole schema.  Invariants without a
# scoped variant are deferred to the caller's final full sweep (the
# fuzzer's ``final_check``); ALWAYS_FULL members run whole regardless.
# ----------------------------------------------------------------------


def _scoped_rule_messages(
    rule, schema: Schema, names: Iterable[str]
) -> Iterator[str]:
    """Per-interface validation *rule* over just the scoped *names*."""
    for name in names:
        interface = schema.interfaces.get(name)
        if interface is None:
            continue
        for issue in rule(schema, interface):
            if issue.severity == SEVERITY_ERROR:
                yield str(issue)


@scoped_invariant("dangling-types")
def _scoped_dangling(schema, context, scoped):
    yield from _scoped_rule_messages(dangling_type_issues, schema, scoped)


@scoped_invariant("inverse-pairing")
def _scoped_inverse_pairing(schema, context, scoped):
    yield from _scoped_rule_messages(inverse_issues, schema, scoped)


@scoped_invariant("hierarchy-one-to-many")
def _scoped_one_to_many(schema, context, scoped):
    yield from _scoped_rule_messages(cardinality_issues, schema, scoped)


@scoped_invariant("keys-resolve")
def _scoped_keys_resolve(schema, context, scoped):
    yield from _scoped_rule_messages(key_issues, schema, scoped)


@scoped_invariant("order-by-resolve")
def _scoped_order_by_resolve(schema, context, scoped):
    yield from _scoped_rule_messages(order_by_issues, schema, scoped)


def _local_link_successors(schema: Schema, kind: RelationshipKind):
    """Per-name successor function of a link graph (whole -> part).

    Derived from the owning interface directly so a scoped cycle check
    never materializes the whole edge list the way
    ``part_of_successors`` does.
    """
    interfaces = schema.interfaces

    def successors(name: str):
        interface = interfaces.get(name)
        if interface is None:
            return ()
        return tuple(
            end.target_type
            for end in interface.relationships_of_kind(kind)
            if end.is_to_many
        )

    return successors


@scoped_invariant("isa-acyclic")
def _scoped_isa_acyclic(schema, context, scoped):
    # A mutation can only create a cycle passing through a touched
    # node, and every cycle is reachable from each of its members --
    # DFS seeded at the scoped names finds it.
    cycle = _find_cycle(scoped, isa_successors(schema))
    if cycle is not None:
        yield str(isa_cycle_issue(cycle))


@scoped_invariant("part-of-acyclic")
def _scoped_part_of_acyclic(schema, context, scoped):
    successors = _local_link_successors(schema, RelationshipKind.PART_OF)
    cycle = _find_cycle(scoped, successors)
    if cycle is not None:
        yield str(part_of_cycle_issue(cycle))


@scoped_invariant("instance-of-acyclic")
def _scoped_instance_of_acyclic(schema, context, scoped):
    successors = _local_link_successors(schema, RelationshipKind.INSTANCE_OF)
    cycle = _find_cycle(scoped, successors)
    if cycle is not None:
        yield str(instance_of_cycle_issue(cycle))


@scoped_invariant("index-generalization-vs-scan")
def _scoped_index_generalization(schema, context, scoped):
    # Per-name probes only; the whole-schema generalization_roots()
    # comparison is deferred to the final full sweep.  The subtype scan
    # is batched: one pass over the schema builds the same
    # name -> direct-subtypes lists ``scan_subtypes`` derives per call
    # (declaration order), so the sweep costs O(types + probes), not
    # O(probes x types).
    sample = _stride_sample(scoped, schema.generation)
    if not sample:
        return
    scanned_subtypes: dict[str, list[str]] = {}
    for interface in schema:
        for supertype in interface.supertypes:
            scanned_subtypes.setdefault(supertype, []).append(interface.name)

    def scan_descendants(name: str) -> set[str]:
        result: set[str] = set()
        frontier = list(scanned_subtypes.get(name, ()))
        while frontier:
            current = frontier.pop()
            if current in result:
                continue
            result.add(current)
            frontier.extend(scanned_subtypes.get(current, ()))
        return result

    for name in sample:
        indexed = schema.subtypes(name)
        scanned = scanned_subtypes.get(name, [])
        if indexed != scanned:
            yield f"subtypes({name!r}): index {indexed!r} != scan {scanned!r}"
        if schema.descendants(name) != scan_descendants(name):
            yield f"descendants({name!r}): index != scan"
        if schema.ancestors(name) != index_module.scan_ancestors(schema, name):
            yield f"ancestors({name!r}): index != scan"


@scoped_invariant("index-aggregation-vs-scan")
def _scoped_index_aggregation(schema, context, scoped):
    # ``scan_parts`` / ``scan_wholes`` rebuild the full edge list per
    # call; build it once and fold both directions, preserving edge
    # order, so every probe is then a dict lookup.
    sample = _stride_sample(scoped, schema.generation)
    if not sample:
        return
    edges = index_module.scan_link_edges(schema, RelationshipKind.PART_OF)
    scanned_parts: dict[str, list[str]] = {}
    scanned_wholes: dict[str, list[str]] = {}
    for whole, part, _ in edges:
        scanned_parts.setdefault(whole, []).append(part)
        scanned_wholes.setdefault(part, []).append(whole)
    for name in sample:
        if schema.parts(name) != scanned_parts.get(name, []):
            yield f"parts({name!r}): index != scan"
        if schema.wholes(name) != scanned_wholes.get(name, []):
            yield f"wholes({name!r}): index != scan"


@scoped_invariant("incremental-vs-full-validation")
def _scoped_incremental_validation(schema, context, scoped):
    # Fold the cache's dirty set (O(dirty)), then recompute just the
    # scoped interfaces' issue slots against the cached ones.
    schema.validation.validate()
    yield from schema.validation.recheck_interfaces(scoped)


@scoped_invariant("columnar-vs-dict-adjacency")
def _scoped_columnar_adjacency(schema, context, scoped):
    # Row-level differential: each touched interface's columns must
    # match its live definition, and its reverse-reference buckets must
    # contain it.  The whole-store differential (plus free-list and
    # refcount integrity) runs in the final full sweep.
    adjacency = schema.index.adjacency
    for name in scoped:
        interface = schema.interfaces.get(name)
        if interface is None:
            continue
        parents = adjacency.parents_of(name)
        if parents != tuple(interface.supertypes):
            yield (
                f"parents_of({name!r}): columns {parents!r} != declared "
                f"{tuple(interface.supertypes)!r}"
            )
        refs = frozenset(interface.referenced_type_names())
        if adjacency.refs_of(name) != refs:
            yield (
                f"refs_of({name!r}): columns {sorted(adjacency.refs_of(name))!r}"
                f" != derived {sorted(refs)!r}"
            )
        for target in refs:
            if name not in adjacency.referencers_of(target):
                yield (
                    f"referencers_of({target!r}) is missing the live "
                    f"referencer {name!r}"
                )


def _sub_schema(schema: Schema, names: Iterable[str], suffix: str) -> Schema:
    """A fresh schema holding copies of just *names*, in declaration
    order.  References leaving the slice dangle, which the printer,
    parser, and mapper all accept -- dangling names are legal schema
    states (DESIGN 5i)."""
    order = schema.index.declaration_order()
    sub = Schema(f"{schema.name}_{suffix}")
    for name in sorted(names, key=order.__getitem__):
        sub.add_interface(schema.interfaces[name].copy())
    return sub


@scoped_invariant("odl-round-trip")
def _scoped_odl_round_trip(schema, context, scoped):
    from repro.odl.parser import parse_schema
    from repro.odl.printer import print_schema

    sub = _sub_schema(schema, scoped, "odl_scoped")
    text = print_schema(sub)
    try:
        parsed = parse_schema(text, name=sub.name)
    except Exception as error:  # noqa: BLE001 - any escape is the finding
        yield f"printed ODL of the touched closure does not re-parse: {error}"
        return
    if not schemas_equal(sub, parsed):
        yield (
            "printer -> parser round trip changed the touched closure "
            "sub-schema"
        )
    elif print_schema(parsed) != text:
        yield "printer -> parser -> printer is not idempotent on the closure"


@scoped_invariant("name-equivalence-mapping")
def _scoped_name_equivalence(schema, context, scoped):
    sub = _sub_schema(schema, scoped, "map_scoped")
    mapping = generate_mapping(sub, sub.copy(f"{sub.name}_verify"))
    if mapping.added() or mapping.deleted():
        yield (
            "scoped self-mapping reports "
            f"{len(mapping.added())} added / {len(mapping.deleted())} "
            "deleted constructs"
        )
    if mapping.entries and mapping.reuse_ratio() != 1.0:
        yield (
            "scoped self-mapping reuse ratio is "
            f"{mapping.reuse_ratio()}, not 1.0"
        )
