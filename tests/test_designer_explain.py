"""Tests for the explanation facility (paper extension, Section 5)."""

import pytest

from repro.concepts.decompose import decompose
from repro.designer.explain import (
    explain_aggregation,
    explain_concept,
    explain_generalization,
    explain_instance_of,
    explain_wagon_wheel,
)


class TestWagonWheelExplanation:
    def test_mentions_attributes_and_relationships(self, university):
        wheel = decompose(university).by_identifier("ww:Course_Offering")
        prose = explain_wagon_wheel(wheel)
        assert "Course_Offering is an object type" in prose
        assert "room (string(10))" in prose
        assert "related to exactly one Syllabus through described_by" in prose
        assert "related to many Book" in prose

    def test_mentions_instance_of_link(self, university):
        wheel = decompose(university).by_identifier("ww:Course_Offering")
        prose = explain_wagon_wheel(wheel)
        assert "instance of Course" in prose

    def test_mentions_extent_and_keys(self, university):
        wheel = decompose(university).by_identifier("ww:Course")
        prose = explain_wagon_wheel(wheel)
        assert "extent 'courses'" in prose
        assert "key (number)" in prose

    def test_mentions_supertype_and_subtypes(self, university):
        wheel = decompose(university).by_identifier("ww:Student")
        prose = explain_wagon_wheel(wheel)
        assert "kind of Person" in prose
        assert "Undergraduate and Graduate" in prose

    def test_part_of_spokes(self, house):
        wheel = decompose(house).by_identifier("ww:Roof")
        prose = explain_wagon_wheel(wheel)
        assert "whole consisting of Shingle parts" in prose
        assert "component part of Structure" in prose

    def test_operations_mentioned(self, university):
        wheel = decompose(university).by_identifier("ww:Course_Offering")
        assert "short enrollment()" in explain_wagon_wheel(wheel)


class TestHierarchyExplanations:
    def test_generalization_lists_specialisations(self, university):
        hierarchy = decompose(university).by_identifier("gh:Person")
        prose = explain_generalization(hierarchy, university)
        assert "Person is the root" in prose
        assert "Student is specialised into Graduate and Undergraduate" in prose

    def test_generalization_inheritance_examples(self, university):
        hierarchy = decompose(university).by_identifier("gh:Person")
        prose = explain_generalization(hierarchy, university)
        assert "inherits" in prose
        assert "(from Person)" in prose

    def test_aggregation_lists_parts(self, house):
        hierarchy = decompose(house).by_identifier("ah:House")
        prose = explain_aggregation(hierarchy)
        assert "House is the root of an aggregation" in prose
        assert (
            "A Roof consists of Plywood_Decking, Shingle, and Tar_Paper"
            in prose
        )

    def test_instance_of_verbalises_chain(self, software):
        hierarchy = decompose(software).by_identifier("ih:Application")
        prose = explain_instance_of(hierarchy)
        assert (
            "Each Application is a generic specification with many "
            "Application_Version instances." in prose
        )

    def test_dispatch(self, university):
        for concept in decompose(university).all_concepts():
            assert explain_concept(concept, university)

    def test_dispatch_rejects_unknown(self):
        with pytest.raises(TypeError):
            explain_concept(object())  # type: ignore[arg-type]


class TestSessionIntegration:
    def test_explain_command(self, university):
        from repro.designer.cli import execute
        from repro.designer.session import DesignSession
        from repro.repository.repository import SchemaRepository

        session = DesignSession(SchemaRepository(university))
        output = execute(session, "explain gh:Person")
        assert "Person is the root" in output
        execute(session, "select ww:Book")
        assert "Book is an object type" in execute(session, "explain")
