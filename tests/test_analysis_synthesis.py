"""Tests for operation-sequence synthesis."""

import pytest

from repro.analysis.completeness import full_rebuild_script
from repro.analysis.synthesis import SynthesisError, synthesize_operations
from repro.catalog import aatdb_schema, acedb_schema, sacchdb_schema
from repro.knowledge.propagation import expand
from repro.model.fingerprint import schemas_equal
from repro.ops.base import OperationContext


def apply_script(source, plan):
    scratch = source.copy("applied")
    context = OperationContext(reference=source)
    for operation in plan:
        for step in expand(scratch, operation, context):
            step.apply(scratch, context)
    return scratch


class TestSynthesis:
    def test_identity_synthesis_is_empty(self, small):
        assert synthesize_operations(small, small.copy()) == []

    def test_added_attribute(self, small):
        target = small.copy("target")
        from repro.model.attributes import Attribute
        from repro.model.types import scalar

        target.get("Person").add_attribute(Attribute("dob", scalar("date")))
        plan = synthesize_operations(small, target)
        assert [op.op_name for op in plan] == ["add_attribute"]

    def test_moved_attribute_uses_move_operation(self, small):
        target = small.copy("target")
        moved = target.get("Employee").remove_attribute("salary")
        target.get("Person").add_attribute(moved)
        plan = synthesize_operations(small, target)
        assert [op.op_name for op in plan] == ["modify_attribute"]

    def test_resized_attribute_uses_size_operation(self, small):
        target = small.copy("target")
        person = target.get("Person")
        person.replace_attribute(person.get_attribute("name").with_size(99))
        plan = synthesize_operations(small, target)
        assert [op.op_name for op in plan] == ["modify_attribute_size"]

    def test_cardinality_change(self, small):
        from repro.model.types import list_of

        target = small.copy("target")
        department = target.get("Department")
        end = department.get_relationship("staff")
        department.replace_relationship(end.with_target(list_of("Employee")))
        plan = synthesize_operations(small, target)
        assert [op.op_name for op in plan] == [
            "modify_relationship_cardinality"
        ]

    def test_acedb_to_aatdb(self):
        source, target = acedb_schema(), aatdb_schema()
        plan = synthesize_operations(source, target)
        assert schemas_equal(apply_script(source, plan), target)

    def test_acedb_to_sacchdb(self):
        source, target = acedb_schema(), sacchdb_schema()
        plan = synthesize_operations(source, target)
        assert schemas_equal(apply_script(source, plan), target)

    def test_cross_family_synthesis(self, small, university):
        plan = synthesize_operations(small, university)
        assert schemas_equal(apply_script(small, plan), university)

    def test_synthesis_shorter_than_full_rebuild(self):
        source, target = acedb_schema(), aatdb_schema()
        synthesized = synthesize_operations(source, target)
        rebuild = full_rebuild_script(source, target)
        assert len(synthesized) < len(rebuild) / 2

    def test_verify_flag_raises_on_bad_plan(self, small, monkeypatch):
        from repro.analysis import synthesis as module

        monkeypatch.setattr(
            module._Synthesizer, "build", lambda self: []
        )
        target = small.copy("target")
        target.get("Person").remove_attribute("name")
        with pytest.raises(SynthesisError):
            synthesize_operations(small, target)
