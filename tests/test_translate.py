"""Tests for the relational and ER translations (Section 5)."""

import pytest

from repro.catalog import (
    business_schema,
    house_schema,
    software_schema,
    university_schema,
)
from repro.odl.parser import parse_schema
from repro.translate.er import to_er, to_er_text
from repro.translate.relational import to_relational, to_sql


class TestRelationalBasics:
    def test_table_per_interface(self, small):
        relational = to_relational(small)
        assert set(relational.table_names()) == {
            "person", "employee", "department"
        }

    def test_primary_key_from_first_key(self, small):
        table = to_relational(small).table("person")
        assert table.primary_key == ("id",)
        id_column = next(c for c in table.columns if c.name == "id")
        assert not id_column.nullable

    def test_surrogate_key_for_keyless_root(self):
        schema = parse_schema("interface Note { attribute string(80) body; };",
                              name="s")
        table = to_relational(schema).table("note")
        assert table.primary_key == ("note_id",)

    def test_subtype_shares_root_key(self, small):
        employee = to_relational(small).table("employee")
        assert employee.primary_key == ("id",)
        fks = [fk for fk in employee.foreign_keys
               if fk.referenced_table == "person"]
        assert len(fks) == 1
        assert fks[0].on_delete_cascade

    def test_deep_hierarchy_references_direct_supertype(self, university):
        relational = to_relational(university)
        masters = relational.table("masters")
        assert any(
            fk.referenced_table == "graduate" for fk in masters.foreign_keys
        )
        assert masters.primary_key == ("id",)

    def test_extra_keys_become_unique(self):
        schema = parse_schema(
            "interface A { keys (x), (y); attribute long x; attribute long y; };",
            name="s",
        )
        table = to_relational(schema).table("a")
        assert table.primary_key == ("x",)
        assert table.unique_keys == [("y",)]

    def test_scalar_type_mapping(self, small):
        table = to_relational(small).table("person")
        name_column = next(c for c in table.columns if c.name == "name")
        assert name_column.sql_type == "VARCHAR(30)"


class TestRelationalRelationships:
    def test_one_to_many_fk_on_many_side(self, small):
        employee = to_relational(small).table("employee")
        fk_columns = {c.name for c in employee.columns}
        assert "works_in_code" in fk_columns
        assert any(
            fk.referenced_table == "department"
            for fk in employee.foreign_keys
        )

    def test_many_to_many_junction(self, university):
        relational = to_relational(university)
        junction = relational.table("course_offering_book_for")
        assert len(junction.primary_key) >= 2
        referenced = {fk.referenced_table for fk in junction.foreign_keys}
        assert referenced == {"course_offering", "book"}

    def test_part_of_cascades(self, house):
        structure = to_relational(house).table("structure")
        house_fk = next(
            fk for fk in structure.foreign_keys
            if fk.referenced_table == "house"
        )
        assert house_fk.on_delete_cascade

    def test_instance_of_cascades(self, software):
        version = to_relational(software).table("application_version")
        app_fk = next(
            fk for fk in version.foreign_keys
            if fk.referenced_table == "application"
        )
        assert app_fk.on_delete_cascade

    def test_collection_attribute_child_table(self):
        schema = parse_schema(
            "interface A { keys (id); attribute long id; "
            "attribute set<string(20)> tags; };",
            name="s",
        )
        relational = to_relational(schema)
        child = relational.table("a_tags")
        owner_fk = child.foreign_keys[0]
        assert owner_fk.referenced_table == "a"
        assert owner_fk.on_delete_cascade

    def test_reserved_table_names_quoted(self):
        sql = to_sql(business_schema())
        assert 'CREATE TABLE "order" (' in sql
        assert 'REFERENCES "order"' in sql

    def test_full_catalog_translates(self):
        for builder in (
            university_schema, house_schema, software_schema, business_schema,
        ):
            ddl = to_sql(builder())
            assert ddl.count("CREATE TABLE") >= 4
            # Every table body is syntactically balanced.
            assert ddl.count("(") >= ddl.count("CREATE TABLE")


class TestErModel:
    def test_entities_and_isa(self, small):
        model = to_er(small)
        assert model.entity("Employee").isa == ["Person"]
        assert {e.name for e in model.entities} == {
            "Person", "Employee", "Department"
        }

    def test_key_attributes_marked(self, small):
        person = to_er(small).entity("Person")
        id_attribute = next(a for a in person.attributes if a.name == "id")
        assert id_attribute.is_key

    def test_multivalued_attributes_marked(self):
        schema = parse_schema(
            "interface A { attribute set<string(5)> tags; };", name="s"
        )
        attribute = to_er(schema).entity("A").attributes[0]
        assert attribute.is_multivalued

    def test_relationship_cardinalities(self, small):
        model = to_er(small)
        relationship = model.relationships[0]
        # Employee (N) -- works_in -- (1) Department: many employees per
        # department, one department per employee.
        assert relationship.name == "works_in"
        assert relationship.first_entity == "Employee"
        assert relationship.first_cardinality == "N"
        assert relationship.second_cardinality == "1"

    def test_part_of_stereotype(self, house):
        model = to_er(house)
        stereotypes = {r.stereotype for r in model.relationships}
        assert "part-of" in stereotypes

    def test_instance_of_stereotype(self, software):
        model = to_er(software)
        assert all(r.stereotype == "instance-of" for r in model.relationships)

    def test_each_relationship_once(self, small):
        model = to_er(small)
        assert len(model.relationships) == 1

    def test_text_rendering(self, small):
        text = to_er_text(small)
        assert "entity Employee ISA Person" in text
        assert "-- works_in --" in text

    def test_unknown_entity_lookup(self, small):
        with pytest.raises(KeyError):
            to_er(small).entity("Ghost")
