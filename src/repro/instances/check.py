"""``check_population``: does a schema admit a population?

This module is the *specification* of the instance layer: every
constraint family the extended object model implies for instances is
enforced here, mirroring the structural rules of
:mod:`repro.model.validation` at the object level:

* **object-type** -- every object instantiates a defined interface;
* **attribute** -- attribute values name attributes available on the
  object's type (local or inherited) and conform to their domain type
  (scalar domains by Python type and declared size, interface domains
  by ISA extent membership, collections element-wise);
* **link** -- links follow traversal paths available on the owner's
  type and point at objects of the population;
* **isa-extent** -- a link target must be in the extent of the end's
  target type: its direct type is that interface or a descendant (the
  subtype-substitutability half of ISA extent containment; the other
  half, supertype keys constraining subtype objects, lives in the key
  check's extent closure);
* **cardinality** -- a to-one end holds at most one target; a ``set``
  end holds no duplicates; an ``array<T, n>`` end holds at most ``n``;
* **inverse** -- every link is mirrored on the declared inverse
  traversal path (checked only when the schema-level inverse is itself
  well formed -- a broken schema inverse is the schema's issue, not the
  population's);
* **key** -- over each interface's extent (objects whose direct type is
  the interface or a descendant), every declared key is total (all key
  attributes carry values) and unique;
* **order-by** -- the target sequence of an ordered to-many end is
  non-decreasing under the declared order-by attributes of the targets;
* **part-of / instance-of** -- the implicit 1:N at the object level:
  per relationship, no part (instance) belongs to two wholes
  (generics), and the object-level part-of / instance-of graphs are
  acyclic (the type graphs being DAGs does not imply this once
  subtyping lets an object appear on both sides).

Issues are reported deterministically: object checks in population
insertion order, extent and hierarchy checks in schema declaration
order.
"""

from __future__ import annotations

from repro.instances.population import (
    InstanceObject,
    Population,
    PopulationIssue,
)
from repro.model.relationships import RelationshipEnd, RelationshipKind
from repro.model.schema import Schema
from repro.model.types import (
    CollectionType,
    NamedType,
    ScalarType,
    TypeRef,
)

#: Scalar domains by the Python types their values may take.  ``bool``
#: is deliberately excluded from the numeric rows (it is an ``int``
#: subclass but ``boolean`` is its own ODL domain).
_TEXT_SCALARS = frozenset(
    {"string", "char", "date", "time", "timestamp", "interval"}
)
_INT_SCALARS = frozenset({"short", "long", "octet"})
_FLOAT_SCALARS = frozenset({"float", "double"})


def available_relationships(
    schema: Schema, type_name: str
) -> dict[str, tuple[str, RelationshipEnd]]:
    """path -> (defining type, end) for *type_name*, walking supertypes.

    The relationship-end analogue of ``Schema.inherited_attributes``:
    local declarations win, then nearest-first depth-first ancestry.
    """
    result: dict[str, tuple[str, RelationshipEnd]] = {}
    for owner in schema._linearised_ancestry(type_name):
        for path, end in schema.get(owner).relationships.items():
            result.setdefault(path, (owner, end))
    return result


def _in_extent(schema: Schema, obj_type: str, interface: str) -> bool:
    """Is an object of direct type *obj_type* in *interface*'s extent?"""
    return obj_type == interface or interface in schema.ancestors(obj_type)


def _scalar_conforms(domain: ScalarType, value: object) -> bool:
    name = domain.name
    if name == "boolean":
        return isinstance(value, bool)
    if name in _INT_SCALARS:
        return isinstance(value, int) and not isinstance(value, bool)
    if name in _FLOAT_SCALARS:
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if name in _TEXT_SCALARS:
        if not isinstance(value, str):
            return False
        if name == "char":
            return len(value) <= (domain.size or 1)
        if domain.size is not None:
            return len(value) <= domain.size
        return True
    return False  # void and friends admit no attribute values


def _value_issues(
    schema: Schema,
    pop: Population,
    obj: InstanceObject,
    attr_name: str,
    domain: TypeRef,
    value: object,
) -> list[PopulationIssue]:
    location = f"{obj.oid}.{attr_name}"
    if isinstance(domain, ScalarType):
        if not _scalar_conforms(domain, value):
            return [PopulationIssue(
                "attribute", location,
                f"value {value!r} does not conform to domain {domain}",
            )]
        return []
    if isinstance(domain, NamedType):
        if not isinstance(value, str) or value not in pop:
            return [PopulationIssue(
                "attribute", location,
                f"value {value!r} is not the id of a population object "
                f"(domain {domain})",
            )]
        target = pop.get(value)
        if target.type_name not in schema.interfaces or not _in_extent(
            schema, target.type_name, domain.name
        ):
            return [PopulationIssue(
                "attribute", location,
                f"object {value} of type {target.type_name} is not in the "
                f"extent of {domain.name}",
            )]
        return []
    # CollectionType: element-wise, plus set/array shape constraints.
    if not isinstance(value, (list, tuple)):
        return [PopulationIssue(
            "attribute", location,
            f"value {value!r} is not a collection (domain {domain})",
        )]
    issues: list[PopulationIssue] = []
    if domain.kind == "set" and len(set(map(repr, value))) != len(value):
        issues.append(PopulationIssue(
            "attribute", location, "set-valued attribute holds duplicates",
        ))
    if domain.kind == "array" and domain.size is not None:
        if len(value) > domain.size:
            issues.append(PopulationIssue(
                "attribute", location,
                f"array holds {len(value)} elements, size is {domain.size}",
            ))
    for element in value:
        issues.extend(
            _value_issues(schema, pop, obj, attr_name, domain.element, element)
        )
    return issues


def _attribute_issues(
    schema: Schema, pop: Population, obj: InstanceObject
) -> list[PopulationIssue]:
    issues: list[PopulationIssue] = []
    available = schema.inherited_attributes(obj.type_name)
    for attr_name, value in obj.attributes.items():
        owner = available.get(attr_name)
        if owner is None:
            issues.append(PopulationIssue(
                "attribute", f"{obj.oid}.{attr_name}",
                f"type {obj.type_name} has no attribute {attr_name!r}",
            ))
            continue
        domain = schema.get(owner).attributes[attr_name].type
        issues.extend(
            _value_issues(schema, pop, obj, attr_name, domain, value)
        )
    return issues


def _link_issues(
    schema: Schema,
    pop: Population,
    obj: InstanceObject,
    ends: dict[str, tuple[str, RelationshipEnd]],
) -> list[PopulationIssue]:
    issues: list[PopulationIssue] = []
    for path, targets in obj.links.items():
        location = f"{obj.oid}.{path}"
        found = ends.get(path)
        if found is None:
            issues.append(PopulationIssue(
                "link", location,
                f"type {obj.type_name} has no relationship {path!r}",
            ))
            continue
        defining_owner, end = found
        resolved: list[InstanceObject] = []
        for target_oid in targets:
            if target_oid not in pop:
                issues.append(PopulationIssue(
                    "link", location,
                    f"target {target_oid!r} is not in the population",
                ))
                continue
            resolved.append(pop.get(target_oid))
        for target in resolved:
            if target.type_name not in schema.interfaces or not _in_extent(
                schema, target.type_name, end.target_type
            ):
                issues.append(PopulationIssue(
                    "isa-extent", location,
                    f"object {target.oid} of type {target.type_name} is "
                    f"not in the extent of {end.target_type}",
                ))
        # Cardinality: to-one arity, set duplicates, array size.
        if not end.is_to_many and len(targets) > 1:
            issues.append(PopulationIssue(
                "cardinality", location,
                f"to-one end holds {len(targets)} targets "
                f"({', '.join(targets)})",
            ))
        if end.collection_kind == "set" and len(set(targets)) != len(targets):
            issues.append(PopulationIssue(
                "cardinality", location,
                "set-valued end lists the same target twice",
            ))
        if (
            isinstance(end.target, CollectionType)
            and end.target.kind == "array"
            and end.target.size is not None
            and len(targets) > end.target.size
        ):
            issues.append(PopulationIssue(
                "cardinality", location,
                f"array end holds {len(targets)} targets, size is "
                f"{end.target.size}",
            ))
        # Inverse pairing, when the schema-level inverse is well formed.
        if schema.find_inverse(defining_owner, end) is not None:
            for target in resolved:
                if obj.oid not in target.links.get(end.inverse_name, ()):
                    issues.append(PopulationIssue(
                        "inverse", location,
                        f"link to {target.oid} is not mirrored on "
                        f"{target.oid}.{end.inverse_name}",
                    ))
        # Order-by: the stored sequence must already be sorted.
        if end.order_by and resolved:
            issues.extend(
                _order_by_issues(location, end, resolved)
            )
    return issues


def _order_by_issues(
    location: str, end: RelationshipEnd, targets: list[InstanceObject]
) -> list[PopulationIssue]:
    keys = []
    for target in targets:
        key = []
        for attr in end.order_by:
            if attr not in target.attributes:
                return [PopulationIssue(
                    "order-by", location,
                    f"target {target.oid} carries no value for order-by "
                    f"attribute {attr!r}",
                )]
            key.append(target.attributes[attr])
        keys.append(tuple(key))
    try:
        ordered = all(a <= b for a, b in zip(keys, keys[1:]))
    except TypeError:
        return [PopulationIssue(
            "order-by", location,
            "order-by values are not comparable across targets",
        )]
    if not ordered:
        return [PopulationIssue(
            "order-by", location,
            "targets are not ordered by "
            f"({', '.join(end.order_by)})",
        )]
    return []


def _hashable(value: object) -> object:
    if isinstance(value, (list, tuple)):
        return tuple(_hashable(element) for element in value)
    return value


def _key_issues(
    schema: Schema, members: dict[str, list[InstanceObject]]
) -> list[PopulationIssue]:
    """Key totality and uniqueness over each interface's extent."""
    issues: list[PopulationIssue] = []
    for interface_name, extent in members.items():
        interface = schema.get(interface_name)
        for key in interface.keys:
            seen: dict[object, str] = {}
            for obj in extent:
                values = []
                missing = False
                for attr in key:
                    if attr not in obj.attributes:
                        issues.append(PopulationIssue(
                            "key", obj.oid,
                            f"no value for key attribute {attr!r} of "
                            f"{interface_name} key ({', '.join(key)})",
                        ))
                        missing = True
                        break
                    values.append(_hashable(obj.attributes[attr]))
                if missing:
                    continue
                value_key = tuple(values)
                other = seen.get(value_key)
                if other is not None:
                    issues.append(PopulationIssue(
                        "key", obj.oid,
                        f"duplicates {interface_name} key "
                        f"({', '.join(key)}) value of {other}",
                    ))
                else:
                    seen[value_key] = obj.oid
    return issues


_HIERARCHY_KINDS = (
    (RelationshipKind.PART_OF, "part-of", "part", "whole"),
    (RelationshipKind.INSTANCE_OF, "instance-of", "instance", "generic"),
)


def _hierarchy_issues(
    schema: Schema,
    pop: Population,
    ends_by_type: dict[str, dict[str, tuple[str, RelationshipEnd]]],
) -> list[PopulationIssue]:
    """Object-level implicit 1:N: exclusive membership and acyclicity."""
    issues: list[PopulationIssue] = []
    for kind, label, member_noun, owner_noun in _HIERARCHY_KINDS:
        # Directed object edges owner -> member over every to-many end
        # of this kind; membership is tracked per relationship (the
        # defining end), matching the per-relationship 1:N of the paper.
        edges: dict[str, set[str]] = {}
        owners_of: dict[tuple[str, str, str], list[tuple[str, str]]] = {}
        for obj in pop:
            ends = ends_by_type.get(obj.type_name, {})
            for path, targets in obj.links.items():
                found = ends.get(path)
                if found is None:
                    continue
                defining_owner, end = found
                if end.kind is not kind or not end.is_to_many:
                    continue
                for target_oid in targets:
                    if target_oid not in pop:
                        continue
                    edges.setdefault(obj.oid, set()).add(target_oid)
                    owners_of.setdefault(
                        (defining_owner, path, target_oid), []
                    ).append((obj.oid, path))
        for (_, path, member_oid), owners in owners_of.items():
            distinct = sorted({owner for owner, _ in owners})
            if len(distinct) > 1:
                issues.append(PopulationIssue(
                    label, f"{member_oid}",
                    f"{member_noun} belongs to {len(distinct)} "
                    f"{owner_noun}s via {path!r} "
                    f"({', '.join(distinct)})",
                ))
        cycle = _find_cycle(edges)
        if cycle is not None:
            issues.append(PopulationIssue(
                label, cycle[0],
                f"object-level {label} cycle: {' -> '.join(cycle)}",
            ))
    return issues


def _find_cycle(edges: dict[str, set[str]]) -> list[str] | None:
    """One directed cycle in *edges* as an oid path, or ``None``."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in edges}
    for root in edges:
        if color[root] is not WHITE:
            continue
        stack: list[tuple[str, list[str]]] = [(root, [root])]
        while stack:
            node, path = stack.pop()
            if node not in edges:
                continue
            if color.get(node) == BLACK:
                continue
            color[node] = GRAY
            for successor in sorted(edges.get(node, ())):
                if successor in path:
                    return path[path.index(successor):] + [successor]
                if color.get(successor, WHITE) is WHITE:
                    stack.append((successor, path + [successor]))
            color[node] = BLACK
    return None


def check_population(
    schema: Schema, pop: Population
) -> list[PopulationIssue]:
    """Every way *pop* violates *schema*'s instance-level constraints.

    An empty list means the schema admits the population.  The cost is
    O(population size x ancestry depth), independent of schema size --
    only interfaces the population instantiates are visited.
    """
    issues: list[PopulationIssue] = []
    ends_by_type: dict[str, dict[str, tuple[str, RelationshipEnd]]] = {}
    members: dict[str, list[InstanceObject]] = {}
    for obj in pop:
        if obj.type_name not in schema.interfaces:
            issues.append(PopulationIssue(
                "object-type", obj.oid,
                f"type {obj.type_name!r} is not defined in the schema",
            ))
            continue
        if obj.type_name not in ends_by_type:
            ends_by_type[obj.type_name] = available_relationships(
                schema, obj.type_name
            )
        issues.extend(_attribute_issues(schema, pop, obj))
        issues.extend(
            _link_issues(schema, pop, obj, ends_by_type[obj.type_name])
        )
        # ISA extent containment: the object is a member of its own
        # type's extent and of every ancestor's.
        for interface_name in (
            obj.type_name, *sorted(schema.ancestors(obj.type_name))
        ):
            members.setdefault(interface_name, []).append(obj)
    issues.extend(_key_issues(schema, members))
    issues.extend(_hierarchy_issues(schema, pop, ends_by_type))
    return issues
