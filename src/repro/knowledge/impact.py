"""Impact reports: everything one requested change entails.

Figure 1 shows a "Generate impact report" step feeding designer
feedback; Section 5 (activity 9) asks for "rules to show the designer
the impact of the proposed modification operation (i.e., all of the
changes that follow from a given change)".  An :class:`ImpactReport`
bundles, for one requested operation:

* the full propagation plan (cascaded operations, requested one last);
* the object types affected by any plan step;
* the other concept schemas presenting those types -- the designer is
  editing one point of view, but the change shows up in every concept
  schema that covers an affected type;
* the cautionary statements of the constraint checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.concepts.decompose import Decomposition
from repro.knowledge.constraints import cautions_for
from repro.knowledge.feedback import Feedback
from repro.knowledge.propagation import expand
from repro.model.schema import Schema
from repro.ops.base import OperationContext, SchemaOperation


@dataclass
class ImpactReport:
    """The impact of one requested operation on the workspace."""

    requested: SchemaOperation
    plan: list[SchemaOperation]
    affected_types: tuple[str, ...]
    touched_concepts: tuple[str, ...]
    cautions: list[Feedback] = field(default_factory=list)

    @property
    def cascades(self) -> list[SchemaOperation]:
        """The follow-up operations (everything but the requested one)."""
        return [op for op in self.plan if op is not self.requested]

    def render(self) -> str:
        """Multi-line report, the way the designer CLI prints it."""
        lines = [f"impact of {self.requested.to_text()}:"]
        if self.cascades:
            lines.append(f"  cascades ({len(self.cascades)}):")
            lines.extend(f"    {op.to_text()}" for op in self.cascades)
        else:
            lines.append("  cascades: none")
        lines.append(
            "  affected types: " + (", ".join(self.affected_types) or "none")
        )
        lines.append(
            "  concept schemas touched: "
            + (", ".join(self.touched_concepts) or "none")
        )
        for message in self.cautions:
            lines.append(f"  {message}")
        return "\n".join(lines)


def impact_of(
    schema: Schema,
    operation: SchemaOperation,
    context: OperationContext,
    decomposition: Decomposition | None = None,
) -> ImpactReport:
    """Compute the impact report for *operation* without applying it."""
    plan = expand(schema, operation, context)
    affected: list[str] = []
    for step in plan:
        for name in step.affected_types():
            if name not in affected:
                affected.append(name)
    touched: list[str] = []
    if decomposition is not None:
        for name in affected:
            for concept in decomposition.concepts_covering(name):
                if concept.identifier not in touched:
                    touched.append(concept.identifier)
    cautions: list[Feedback] = []
    for step in plan:
        cautions.extend(cautions_for(schema, step))
    return ImpactReport(
        requested=operation,
        plan=plan,
        affected_types=tuple(affected),
        touched_concepts=tuple(touched),
        cautions=cautions,
    )
