"""Unit tests for repository JSON persistence."""

import json

import pytest

from repro.model.errors import SchemaError
from repro.model.fingerprint import schemas_equal
from repro.ops.language import parse_operation
from repro.repository.persistence import (
    load_repository,
    repository_from_dict,
    repository_to_dict,
    save_repository,
)
from repro.repository.repository import SchemaRepository


@pytest.fixture
def repository(small):
    repo = SchemaRepository(small, custom_name="small_custom")
    repo.apply(
        parse_operation("add_attribute(Person, date, dob)"),
        concept_id="ww:Person",
    )
    repo.apply(parse_operation("delete_type_definition(Department)"))
    return repo


class TestRoundTrip:
    def test_dict_round_trip(self, repository):
        data = repository_to_dict(repository)
        restored = repository_from_dict(data)
        assert schemas_equal(restored.shrink_wrap, repository.shrink_wrap)
        assert schemas_equal(
            restored.workspace.schema, repository.workspace.schema
        )

    def test_concept_ids_preserved(self, repository):
        restored = repository_from_dict(repository_to_dict(repository))
        assert restored.workspace.log[0].concept_id == "ww:Person"
        assert restored.workspace.log[1].concept_id is None

    def test_file_round_trip(self, repository, tmp_path):
        path = tmp_path / "repo.json"
        save_repository(repository, path)
        restored = load_repository(path)
        assert schemas_equal(
            restored.workspace.schema, repository.workspace.schema
        )

    def test_file_is_readable_json(self, repository, tmp_path):
        path = tmp_path / "repo.json"
        save_repository(repository, path)
        data = json.loads(path.read_text())
        assert data["format_version"] == 1
        assert "interface Person" in data["shrink_wrap_odl"]
        assert data["operations"][0]["text"] == (
            "add_attribute(Person, date, dob)"
        )

    def test_propagate_flag_persisted(self, small, tmp_path):
        repo = SchemaRepository(small)
        repo.apply(
            parse_operation("delete_attribute(Employee, salary)"),
            propagate=False,
        )
        restored = repository_from_dict(repository_to_dict(repo))
        assert restored.workspace.log[0].propagated is False


class TestFormatGuards:
    def test_unknown_version_rejected(self, repository):
        data = repository_to_dict(repository)
        data["format_version"] = 99
        with pytest.raises(SchemaError):
            repository_from_dict(data)

    def test_missing_version_rejected(self, repository):
        data = repository_to_dict(repository)
        del data["format_version"]
        with pytest.raises(SchemaError):
            repository_from_dict(data)
