"""Schema families: the descendants of one shrink wrap schema.

Section 4 describes ACEDB spawning "a family of related, customized
schemas based on the original schema"; Section 5 adds that systems
built from one shrink wrap schema interoperate through their common
objects.  A :class:`SchemaFamily` manages exactly that: one root shrink
wrap schema, any number of derived members (each a full repository with
its own script and mapping), the pairwise common objects, and the
family-wide affinity picture.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from repro.analysis.diff import ChangeStatus
from repro.analysis.similarity import affinity_matrix, schema_affinity
from repro.model.errors import SchemaError
from repro.model.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - the import cycle is runtime-only
    from repro.repository.repository import SchemaRepository


@dataclass
class FamilyMember:
    """One derived schema with its derivation record."""

    name: str
    repository: "SchemaRepository"

    @property
    def schema(self) -> Schema:
        assert self.repository.custom_schema is not None
        return self.repository.custom_schema

    @property
    def operation_count(self) -> int:
        return len(self.repository.workspace.log)

    @property
    def reuse_ratio(self) -> float:
        assert self.repository.mapping is not None
        return self.repository.mapping.reuse_ratio()


@dataclass
class SchemaFamily:
    """A shrink wrap schema and every system derived from it."""

    root: Schema
    members: dict[str, FamilyMember] = field(default_factory=dict)

    def derive(self, name: str, script: str) -> FamilyMember:
        """Create a member by applying a customization script to the root."""
        # Imported here: the repository layer itself builds on the
        # analysis layer (diff -> mapping), so the dependency must stay
        # one-way at import time.
        from repro.ops.language import parse_script
        from repro.repository.repository import SchemaRepository

        if name in self.members:
            raise SchemaError(f"family already has a member {name!r}")
        repository = SchemaRepository(self.root.copy(), custom_name=name)
        for operation in parse_script(script):
            repository.apply(operation)
        repository.generate_custom_schema()
        repository.generate_mapping()
        member = FamilyMember(name, repository)
        self.members[name] = member
        return member

    def member(self, name: str) -> FamilyMember:
        try:
            return self.members[name]
        except KeyError:
            raise SchemaError(f"no family member {name!r}") from None

    # ------------------------------------------------------------------
    # Interoperation analysis
    # ------------------------------------------------------------------

    def common_objects(self, first: str, second: str) -> set[str]:
        """Construct paths semantically shared by two members.

        A construct is common when both members' mappings relate it back
        to the same shrink wrap construct (unchanged, modified, or
        moved) -- the "semantically identical constructs [that] have
        already been identified" of Section 5.
        """
        def surviving(member: FamilyMember) -> set[str]:
            mapping = member.repository.mapping
            assert mapping is not None
            return {
                entry.path
                for entry in mapping.corresponding()
                if entry.status is not ChangeStatus.MOVED
            }

        return surviving(self.member(first)) & surviving(self.member(second))

    def family_common_objects(self) -> set[str]:
        """Constructs shared by *every* member of the family."""
        names = list(self.members)
        if not names:
            return set()
        shared = self.common_objects(names[0], names[0])
        for name in names[1:]:
            shared &= self.common_objects(names[0], name)
        return shared

    def affinities(self) -> list[list[float]]:
        """Pairwise schema affinities (root first, then members)."""
        schemas = [self.root] + [m.schema for m in self.members.values()]
        return affinity_matrix(schemas)

    def render(self) -> str:
        """Family tree with derivation stats and pairwise affinities."""
        lines = [f"schema family rooted at {self.root.name!r}:"]
        for member in self.members.values():
            lines.append(
                f"  +- {member.name}: {member.operation_count} operations, "
                f"reuse ratio {member.reuse_ratio:.2f}, affinity to root "
                f"{schema_affinity(self.root, member.schema):.2f}"
            )
        names = list(self.members)
        for index, first in enumerate(names):
            for second in names[index + 1:]:
                shared = self.common_objects(first, second)
                lines.append(
                    f"  {first} <-> {second}: {len(shared)} common objects"
                )
        return "\n".join(lines)
