"""The interactive design session.

A :class:`DesignSession` wraps one :class:`~repro.repository.
SchemaRepository` with the designer-facing loop of Section 3: browse the
concept schemas one by one, issue textual modification operations
against a chosen concept schema (restricted per Table 1), receive
feedback, preview impact, and finally generate the deliverables --
custom schema, mapping, and consistency report.

The session is fully scriptable (the CLI in :mod:`repro.designer.cli`
feeds it line by line), which substitutes for the paper's window/menu
interface while exercising the identical interaction protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.designer.render import concept_listing, render_concept
from repro.knowledge.feedback import Feedback, FeedbackLog, error, info
from repro.model.errors import ReproError
from repro.model.schema import Schema
from repro.odl.printer import print_interface, print_schema
from repro.ops.language import parse_operation
from repro.ops.registry import admissible_operations
from repro.repository.mapping import SchemaMapping
from repro.repository.repository import SchemaRepository


@dataclass
class Deliverables:
    """What the designer takes away from a finished session."""

    custom_schema: Schema
    mapping: SchemaMapping
    consistency: list[Feedback]
    script: str

    def render(self) -> str:
        """The full deliverables report."""
        sections = [
            "=== custom schema (extended ODL) ===",
            print_schema(self.custom_schema),
            "=== mapping ===",
            self.mapping.render(),
            "=== consistency report ===",
            "\n".join(str(m) for m in self.consistency) or "(clean)",
            "=== customization script ===",
            self.script or "(no changes)",
        ]
        return "\n".join(sections)


class DesignSession:
    """One designer's pass over a shrink wrap schema."""

    def __init__(self, repository: SchemaRepository) -> None:
        self.repository = repository
        self.feedback = FeedbackLog()
        self.current_concept_id: str | None = None

    @classmethod
    def from_odl(
        cls, text: str, name: str = "shrink_wrap",
        custom_name: str | None = None,
    ) -> "DesignSession":
        """Start a session directly from extended-ODL text."""
        return cls(SchemaRepository.from_odl(text, name, custom_name))

    # ------------------------------------------------------------------
    # Browsing
    # ------------------------------------------------------------------

    def list_concepts(self) -> str:
        """Listing of every concept schema, grouped by kind."""
        return concept_listing(self.repository.concept_schemas())

    def select(self, concept_id: str) -> str:
        """Make *concept_id* the current point of view and render it."""
        concept = self.repository.concept(concept_id)  # raises if unknown
        self.current_concept_id = concept_id
        return render_concept(concept)

    def show(self, concept_id: str | None = None) -> str:
        """Render one concept schema (default: the current one)."""
        identifier = concept_id or self.current_concept_id
        if identifier is None:
            raise ReproError("no concept schema selected")
        return render_concept(self.repository.concept(identifier))

    def show_operations(self, concept_id: str | None = None) -> str:
        """The operations admissible in one concept schema (Table 1)."""
        identifier = concept_id or self.current_concept_id
        if identifier is None:
            raise ReproError("no concept schema selected")
        concept = self.repository.concept(identifier)
        names = [cls.op_name for cls in admissible_operations(concept.kind)]
        return "\n".join(names)

    def show_odl(self, typename: str | None = None) -> str:
        """The workspace as extended ODL (one type or the whole schema)."""
        schema = self.repository.workspace.schema
        if typename is None:
            return print_schema(schema)
        return print_interface(schema.get(typename))

    # ------------------------------------------------------------------
    # Modifying
    # ------------------------------------------------------------------

    def modify(self, operation_text: str, concept_id: str | None = None) -> bool:
        """Parse and apply one textual operation; returns success.

        All feedback -- cautions, cascade notices, or the rejection
        error -- lands in :attr:`feedback`, mirroring the designer
        receiving messages from the interactive tool.
        """
        identifier = concept_id or self.current_concept_id
        try:
            operation = parse_operation(operation_text)
            entry = self.repository.apply(operation, concept_id=identifier)
        except ReproError as exc:
            self.feedback.add(
                error("operation-rejected", operation_text, str(exc))
            )
            return False
        self.feedback.extend(entry.feedback)
        self.feedback.add(
            info("operation-applied", entry.requested.to_text(),
                 entry.describe())
        )
        return True

    def preview(self, operation_text: str, concept_id: str | None = None) -> str:
        """Impact report for one operation without applying it."""
        identifier = concept_id or self.current_concept_id
        operation = parse_operation(operation_text)
        return self.repository.impact(operation, concept_id=identifier).render()

    def refactor(self, composite_text: str, concept_id: str | None = None) -> bool:
        """Parse and apply one composite (macro) operation; returns success."""
        from repro.ops.language import parse_composite

        identifier = concept_id or self.current_concept_id
        try:
            composite = parse_composite(composite_text)
            entries = self.repository.apply_composite(
                composite, concept_id=identifier
            )
        except ReproError as exc:
            self.feedback.add(
                error("composite-rejected", composite_text, str(exc))
            )
            return False
        for entry in entries:
            self.feedback.extend(entry.feedback)
        self.feedback.add(
            info(
                "composite-applied", composite.composite_name,
                f"{composite.describe()} ({len(entries)} primitive steps)",
            )
        )
        return True

    def explain(self, concept_id: str | None = None) -> str:
        """Plain-prose explanation of one concept schema (extension)."""
        from repro.designer.explain import explain_concept

        identifier = concept_id or self.current_concept_id
        if identifier is None:
            raise ReproError("no concept schema selected")
        return explain_concept(
            self.repository.concept(identifier), self.repository.shrink_wrap
        )

    def suggest(self) -> str:
        """Repair suggestions for the current workspace's findings."""
        from repro.knowledge.suggestions import suggest_repairs

        suggestions = suggest_repairs(self.repository.workspace.schema)
        if not suggestions:
            return "no repairs to suggest"
        return "\n".join(str(s) for s in suggestions)

    def set_alias(self, path: str, local_name: str) -> str:
        """Record a local name for a construct (the Section 5 extension)."""
        self.repository.local_names.set_alias(
            path, local_name, self.repository.workspace.schema
        )
        return f"{path} is locally known as {local_name}"

    def aliases(self) -> str:
        """Render the shrink-wrap-to-local name mapping."""
        return self.repository.local_names.render()

    def undo(self) -> str:
        """Undo the last modification; returns a description."""
        entry = self.repository.undo()
        if entry is None:
            return "nothing to undo"
        return f"undid {entry.describe()}"

    # ------------------------------------------------------------------
    # Deliverables
    # ------------------------------------------------------------------

    def check(self) -> str:
        """On-demand consistency report over the workspace."""
        messages = self.repository.consistency()
        if not messages:
            return "consistency: clean"
        return "\n".join(str(m) for m in messages)

    #: Below this reuse ratio the session warns that shrink wrap design
    #: benefits are being lost (the Section 3.2 good-faith-use
    #: assumption: deleting the whole schema and adding a new one
    #: "can lose many of the benefits that our approach provides").
    GOOD_FAITH_REUSE_THRESHOLD = 0.3

    def finish(self, custom_name: str | None = None) -> Deliverables:
        """Generate the deliverables of the session."""
        custom = self.repository.generate_custom_schema(custom_name)
        mapping = self.repository.generate_mapping()
        consistency = self.repository.consistency()
        if mapping.reuse_ratio() < self.GOOD_FAITH_REUSE_THRESHOLD:
            from repro.knowledge.feedback import caution

            consistency.append(
                caution(
                    "good-faith-use", custom.name,
                    f"only {mapping.reuse_ratio():.0%} of the shrink wrap "
                    "schema survives; replacing most of it forfeits the "
                    "benefits of shrink-wrap-based design (Section 3.2)",
                )
            )
        return Deliverables(
            custom_schema=custom,
            mapping=mapping,
            consistency=consistency,
            script=self.repository.customization_script(),
        )
