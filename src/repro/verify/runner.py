"""Campaign runner and CLI for the differential verification subsystem.

``python -m repro.verify`` sweeps the fuzzer over every catalog schema
plus a ladder of generated schemas, one seeded run per (subject, seed)
pair.  On a failure it delta-debugs the trace to a minimal reproducer
and prints it as a ready-to-paste pytest module, then exits non-zero --
the shrunk test is the bug report.

The smoke configuration (``make fuzz-smoke``) keeps the sweep around
half a minute; the acceptance configuration (``--seeds 25 --steps 200``)
is the deeper soak the ROADMAP's verification contract calls for.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.catalog import SCHEMA_BUILDERS, load
from repro.model.schema import Schema
from repro.verify.fuzzer import FuzzReport, fuzz
from repro.verify.invariants import check_schema, describe_registry
from repro.verify.shrinker import emit_pytest, shrink
from repro.workload.generator import WorkloadSpec, generate_schema


@dataclass(frozen=True)
class Subject:
    """One reference schema the campaign fuzzes against.

    ``source`` is an expression rebuilding the schema -- it goes
    verbatim into emitted reproducers, so it must be self-contained
    given the catalog / workload imports.
    """

    name: str
    source: str
    build: Callable[[], Schema]


def catalog_subjects() -> list[Subject]:
    """Every shrink wrap schema shipped in the catalog."""
    return [
        Subject(name, f"load({name!r})", lambda name=name: load(name))
        for name in SCHEMA_BUILDERS
    ]


def generated_subject(seed: int, types: int = 14) -> Subject:
    """A deterministic synthetic schema (exercises generated shapes)."""
    spec = WorkloadSpec(types=types, seed=seed)
    return Subject(
        f"synthetic_{types}_{seed}",
        f"generate_schema({spec!r})",
        lambda: generate_schema(spec),
    )


def campaign_subjects(seeds: int) -> list[tuple[Subject, int]]:
    """(subject, fuzz seed) pairs: catalog and synthetic interleaved."""
    catalog = catalog_subjects()
    pairs: list[tuple[Subject, int]] = []
    for seed in range(seeds):
        pairs.append((catalog[seed % len(catalog)], seed))
        pairs.append((generated_subject(seed), seed))
    return pairs


# Sizes the large profile ladders through, cycled per seed.  Each step
# on these subjects is cheap, but every invariant sweep is a full scan,
# so run_campaign checks them sparsely (see large_check_every).
LARGE_SIZES = (1_000, 2_000, 5_000, 10_000)


def large_subject(seed: int, types: int) -> Subject:
    """A large synthetic schema: deep ISA chain plus a wide hub.

    These shapes (thousands of types, a supertype chain hundreds deep, a
    wagon-wheel hub with hundreds of spokes) are the ones that exposed
    the PR 6 scale bugs; the profile keeps fuzzing them.
    """
    spec = WorkloadSpec(
        types=types,
        seed=seed,
        isa_chain=types // 5,
        hub_fanout=min(200, types // 5),
        part_of_chain=min(100, types // 10),
        instance_of_chain=min(50, types // 20),
    )
    return Subject(
        f"large_{types}_{seed}",
        f"generate_schema({spec!r})",
        lambda: generate_schema(spec),
    )


def large_subjects(seeds: int) -> list[tuple[Subject, int]]:
    """(subject, fuzz seed) pairs laddering through LARGE_SIZES."""
    return [
        (large_subject(seed, LARGE_SIZES[seed % len(LARGE_SIZES)]), seed)
        for seed in range(seeds)
    ]


def run_campaign(
    seeds: int,
    steps: int,
    check_every: int = 4,
    only_schema: str | None = None,
    do_shrink: bool = True,
    fail_fast: bool = True,
    large_seeds: int = 0,
    large_steps: int = 60,
    large_check_every: int = 30,
    with_populations: bool = False,
    out=sys.stdout,
) -> list[FuzzReport]:
    """Run the sweep; prints one summary line per run, reproducers on
    failure.  Returns every report (failures included).

    ``large_seeds`` appends the large-schema profile: 1k-10k-type
    subjects fuzzed for ``large_steps`` steps with *both* invariant
    tiers spaced ``large_check_every`` steps apart -- on these subjects
    even the cheap tier is a full scan.
    """
    runs = [
        (subject, seed, steps, check_every, 1)
        for subject, seed in campaign_subjects(seeds)
    ]
    runs.extend(
        (subject, seed, large_steps, large_check_every, large_check_every)
        for subject, seed in large_subjects(large_seeds)
    )
    if only_schema is not None:
        runs = [run for run in runs if run[0].name == only_schema]
        if not runs:
            raise SystemExit(f"unknown subject {only_schema!r}")
    reports: list[FuzzReport] = []
    for subject, seed, run_steps, run_check_every, run_cheap_every in runs:
        reference = subject.build()
        baseline = check_schema(reference)
        if baseline:
            print(f"SKIP {subject.name}: reference schema is dirty", file=out)
            for violation in baseline:
                print(f"  {violation}", file=out)
            continue
        report = fuzz(
            reference,
            seed=seed,
            steps=run_steps,
            check_every=run_check_every,
            subject_name=subject.name,
            cheap_every=run_cheap_every,
            with_populations=with_populations,
        )
        reports.append(report)
        print(report.summary(), file=out)
        if report.failure is not None:
            print(report.failure.render(), file=out)
            if do_shrink:
                result = shrink(
                    subject.build(),
                    report.trace,
                    report.failure,
                    with_populations=with_populations,
                )
                print(result.summary(), file=out)
                print("--- minimal reproducer ---", file=out)
                print(
                    emit_pytest(
                        subject.source,
                        result.steps,
                        result.failure,
                        test_name=(
                            f"test_fuzz_{subject.name}_seed{seed}"
                        ),
                    ),
                    file=out,
                )
            if fail_fast:
                break
    return reports


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description=(
            "Differential verification: fuzz operation sequences against "
            "the invariant registry, shrinking any failure to a minimal "
            "pytest reproducer."
        ),
    )
    parser.add_argument(
        "--seeds", type=int, default=10,
        help="fuzz seeds per subject family (default 10)",
    )
    parser.add_argument(
        "--steps", type=int, default=100,
        help="operations per fuzz run (default 100)",
    )
    parser.add_argument(
        "--check-every", type=int, default=4,
        help="run expensive-tier invariants every N steps (default 4)",
    )
    parser.add_argument(
        "--large-seeds", type=int, default=0,
        help=(
            "append N large-schema runs (1k-10k types, deep ISA chains, "
            "wide hubs); default 0 (off)"
        ),
    )
    parser.add_argument(
        "--large-steps", type=int, default=60,
        help="operations per large-schema run (default 60)",
    )
    parser.add_argument(
        "--large-check-every", type=int, default=30,
        help=(
            "invariant cadence (both tiers) on large subjects "
            "(default 30)"
        ),
    )
    parser.add_argument(
        "--schema", default=None,
        help="restrict the sweep to one subject name",
    )
    parser.add_argument(
        "--with-populations", action="store_true",
        help=(
            "carry witness populations alongside each schema: at the "
            "expensive-tier cadence, generate a population the current "
            "schema must admit and cross-check it against a structural "
            "copy (reproducers then include the witnessing data)"
        ),
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="report failures without delta-debugging them",
    )
    parser.add_argument(
        "--keep-going", action="store_true",
        help="continue the sweep past the first failure",
    )
    parser.add_argument(
        "--list-invariants", action="store_true",
        help="print the invariant registry and exit",
    )
    options = parser.parse_args(argv)
    if options.list_invariants:
        print(describe_registry())
        return 0
    reports = run_campaign(
        seeds=options.seeds,
        steps=options.steps,
        check_every=options.check_every,
        only_schema=options.schema,
        do_shrink=not options.no_shrink,
        fail_fast=not options.keep_going,
        large_seeds=options.large_seeds,
        large_steps=options.large_steps,
        large_check_every=options.large_check_every,
        with_populations=options.with_populations,
    )
    failures = [report for report in reports if not report.ok]
    accepted = sum(report.accepted for report in reports)
    rejected = sum(report.rejected for report in reports)
    print(
        f"{len(reports)} runs, {accepted} operations accepted, "
        f"{rejected} rejected, {len(failures)} failing runs"
    )
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
