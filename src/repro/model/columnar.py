"""Columnar (struct-of-arrays) link storage: the 100k-type regime.

The dict-of-sets adjacency the index grew in PR 6 is fast enough at 10k
types but pays Python-object overhead per node and per edge: every
parent tuple, child set, and reference frozenset is a separate
heap-allocated container keyed by strings.  At 100k types those
containers dominate both memory and cache behaviour.

This module stores the same three link families column-wise instead:

* :class:`NameTable` interns every type *name* (defined or dangling)
  to a dense integer id, refcounted with a free list so ids are reused
  after deletes -- but only once nothing references the name anymore
  (a deleted interface's name may legally live on as another type's
  dangling supertype).
* :class:`ColumnarAdjacency` keeps four parallel columns of flat
  ``array('i')`` rows indexed by id -- supertype parents, ISA children,
  outgoing references, and incoming references -- fed incrementally
  from the mutation spine by exactly the record stream
  :class:`~repro.model.index.SchemaIndex` already consumes.
* :class:`DictAdjacency` is the retained dict implementation, kept as
  the executable reference specification: the columnar-vs-dict
  differential (``columnar-vs-dict-adjacency`` invariant and the
  property tests) folds the same stream into both and requires
  identical answers after every operation.

**Id / free-list lifecycle.**  An id's refcount is the number of
reasons its name must stay resolvable: +1 while an interface of that
name is defined, +1 per occurrence in any parents row, +1 per
occurrence in any outgoing-reference row.  ``release`` returns the id
to the free list only at zero, which makes reuse safe under dangling
references; :meth:`ColumnarAdjacency.check_integrity` re-derives every
refcount from the rows and is part of the differential contract.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Iterable

from repro.model.mutation import MutationRecord, replayable_kind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.model.schema import Schema

#: Mutator kinds that change the ISA adjacency incrementally.
ISA_KINDS = frozenset({"add_supertype", "remove_supertype", "set_supertypes"})


class NameTable:
    """Interned name <-> dense integer id with refcounted free-list reuse."""

    __slots__ = ("_ids", "_names", "_refs", "_free")

    def __init__(self) -> None:
        self._ids: dict[str, int] = {}
        self._names: list[str | None] = []
        self._refs: list[int] = []
        self._free: list[int] = []

    def __len__(self) -> int:
        return len(self._ids)

    @property
    def capacity(self) -> int:
        """Total ids ever allocated (live + free-listed)."""
        return len(self._names)

    @property
    def free_ids(self) -> int:
        return len(self._free)

    def acquire(self, name: str) -> int:
        """Intern *name*, bump its refcount, return its id."""
        ident = self._ids.get(name)
        if ident is None:
            if self._free:
                ident = self._free.pop()
                self._names[ident] = name
                self._refs[ident] = 1
            else:
                ident = len(self._names)
                self._names.append(name)
                self._refs.append(1)
            self._ids[name] = ident
        else:
            self._refs[ident] += 1
        return ident

    def release(self, ident: int) -> bool:
        """Drop one reference; True when the id was freed for reuse."""
        refs = self._refs[ident] - 1
        if refs < 0:
            raise RuntimeError(
                f"NameTable refcount underflow for id {ident} "
                f"({self._names[ident]!r})"
            )
        self._refs[ident] = refs
        if refs:
            return False
        name = self._names[ident]
        assert name is not None
        del self._ids[name]
        self._names[ident] = None
        self._free.append(ident)
        return True

    def id_of(self, name: str) -> int | None:
        """Current id of *name*, or None if not interned (no refcount)."""
        return self._ids.get(name)

    def name_of(self, ident: int) -> str:
        name = self._names[ident]
        if name is None:
            raise KeyError(f"id {ident} is on the free list")
        return name

    def refcount(self, ident: int) -> int:
        return self._refs[ident]

    def names(self) -> Iterable[str]:
        return self._ids.keys()

    def copy(self) -> "NameTable":
        """An independent copy (fresh containers, same id assignment)."""
        dup = NameTable.__new__(NameTable)
        dup._ids = dict(self._ids)
        dup._names = list(self._names)
        dup._refs = list(self._refs)
        dup._free = list(self._free)
        return dup


class ColumnarAdjacency:
    """Flat-array ISA / reverse-reference adjacency over one schema.

    Four columns of per-id ``array('i')`` rows (None = empty):

    * ``_parents[i]``  -- name-ids of interface *i*'s supertypes, in
      declaration order with multiplicity (mirrors the supertype list);
    * ``_children[i]`` -- interface ids of defined types listing name
      *i* as a supertype (deduplicated; set semantics);
    * ``_refs_out[i]`` -- name-ids referenced by interface *i*
      (set semantics; ``InterfaceDef.referenced_type_names``);
    * ``_refs_in[i]``  -- interface ids of definitions referencing
      name *i* (deduplicated).

    Fed record-by-record through :meth:`observe` -- ISA kinds update the
    parent/child columns eagerly, every other interface record marks
    its owner pending so the reference columns re-derive lazily, and a
    lossy record marks the whole store dirty for a scan rebuild --
    exactly the protocol of the dict maps it replaces.

    **Copy-on-write fork views (DESIGN.md 5j).**  :meth:`fork_view`
    hands a CoW fork an overlay copy: the outer columns, name table,
    and defined bits are copied (pointer-sized work per id, no schema
    scan), while the inner ``array('i')`` rows stay shared with the
    base.  The view privatises a row the first time it mutates it
    (:meth:`_own`), and pins the base's :attr:`version` at fork time --
    any later base mutation trips the pin in :meth:`ensure_fresh` and
    the view falls back to its own scan rebuild, so in-place writes on
    shared rows by either side are never observable across the fork.
    """

    __slots__ = (
        "_schema",
        "table",
        "_parents",
        "_children",
        "_refs_out",
        "_refs_in",
        "_defined",
        "_pending",
        "_dirty",
        "rebuilds",
        "version",
        "_owned",
        "_base",
        "_base_version",
    )

    def __init__(self, schema: "Schema") -> None:
        self._schema = schema
        self.table = NameTable()
        self._parents: list[array | None] = []
        self._children: list[array | None] = []
        self._refs_out: list[array | None] = []
        self._refs_in: list[array | None] = []
        self._defined = bytearray()
        self._pending: set[str] = set()
        self._dirty = True
        self.rebuilds = 0
        #: Bumped on every content-bearing record (and on mark_dirty);
        #: fork views pin it to detect base divergence.
        self.version = 0
        #: Ids whose rows this fork view has privatised; None when this
        #: store owns all its rows (the non-fork fast path).
        self._owned: set[int] | None = None
        #: The base store a fork view overlays, with its pinned version.
        self._base: "ColumnarAdjacency | None" = None
        self._base_version = 0

    # ------------------------------------------------------------------
    # Spine feed
    # ------------------------------------------------------------------

    def observe(self, record: MutationRecord) -> None:
        """Fold one spine record (the stream ``SchemaIndex`` consumes)."""
        kind = record.kind
        if kind == "scope":
            return
        self.version += 1
        if self._dirty:
            return
        name = record.interface
        if name is None:
            if not replayable_kind(kind):
                self.mark_dirty()
            return
        if kind == "add_interface":
            self._define(
                name, tuple(self._schema.interfaces[name].supertypes)
            )
            self._pending.add(name)
        elif kind == "remove_interface":
            self._undefine(name)
        elif kind in ISA_KINDS:
            self._isa_update(name, record)
            self._pending.add(name)
        else:
            self._pending.add(name)

    def mark_dirty(self) -> None:
        """Forget everything; the next query rebuilds from a scan."""
        self._dirty = True
        self.version += 1
        self.table = NameTable()
        self._parents = []
        self._children = []
        self._refs_out = []
        self._refs_in = []
        self._defined = bytearray()
        self._pending = set()
        # A rebuild re-derives everything from this store's own schema,
        # so a fork view stops overlaying its base and owns all rows.
        self._base = None
        self._owned = None

    # ------------------------------------------------------------------
    # Column maintenance
    # ------------------------------------------------------------------

    def _own(self, ident: int) -> None:
        """Privatise *ident*'s rows before an in-place mutation.

        Fork views share inner ``array('i')`` rows with their base; the
        first write to any of an id's rows copies all four so the base
        never sees the edit.  Non-fork stores take the ``None`` fast
        path.
        """
        owned = self._owned
        if owned is None or ident in owned:
            return
        owned.add(ident)
        for column in (self._parents, self._children, self._refs_out, self._refs_in):
            row = column[ident]
            if row is not None:
                column[ident] = array("i", row)

    def _ensure_row(self, ident: int) -> None:
        grow = ident + 1 - len(self._parents)
        if grow > 0:
            self._parents.extend([None] * grow)
            self._children.extend([None] * grow)
            self._refs_out.extend([None] * grow)
            self._refs_in.extend([None] * grow)
            self._defined.extend(b"\0" * grow)

    def _release(self, ident: int) -> None:
        if self.table.release(ident):
            # Freed for reuse: every row must already be empty -- a
            # non-empty children/refs_in row would itself hold refs.
            self._parents[ident] = None
            self._children[ident] = None
            self._refs_out[ident] = None
            self._refs_in[ident] = None

    def _link_parent(self, ident: int, parent: str) -> None:
        pid = self.table.acquire(parent)
        self._ensure_row(pid)
        self._own(ident)
        self._own(pid)
        row = self._parents[ident]
        if row is None:
            self._parents[ident] = array("i", (pid,))
        else:
            row.append(pid)
        bucket = self._children[pid]
        if bucket is None:
            self._children[pid] = array("i", (ident,))
        elif ident not in bucket:
            bucket.append(ident)

    def _unlink_parent(self, ident: int, parent: str) -> None:
        """Drop every occurrence of *parent* from *ident*'s parents."""
        pid = self.table.id_of(parent)
        if pid is None or self._parents[ident] is None:
            return
        self._own(ident)
        self._own(pid)
        row = self._parents[ident]
        occurrences = 0
        while True:
            try:
                row.remove(pid)
            except ValueError:
                break
            occurrences += 1
        if not occurrences:
            return
        bucket = self._children[pid]
        if bucket is not None and ident in bucket:
            bucket.remove(ident)
        for _ in range(occurrences):
            self._release(pid)

    def _define(self, name: str, parents: tuple[str, ...]) -> None:
        ident = self.table.acquire(name)  # the "defined" reference
        self._ensure_row(ident)
        self._defined[ident] = 1
        for parent in parents:
            self._link_parent(ident, parent)

    def _undefine(self, name: str) -> None:
        ident = self.table.id_of(name)
        if ident is None or not self._defined[ident]:
            self.mark_dirty()  # stream out of sync with the store
            return
        row = self._parents[ident]
        if row:
            for pid in row:
                self._own(pid)
                bucket = self._children[pid]
                if bucket is not None and ident in bucket:
                    bucket.remove(ident)
            released = list(row)
            self._parents[ident] = None
            for pid in released:
                self._release(pid)
        else:
            self._parents[ident] = None
        # Fold the reference column eagerly: refcounts must reflect the
        # rows before the "defined" reference drops, or a still-wired id
        # could hit the free list and be reused under stale rows.
        self._clear_refs(ident)
        self._pending.discard(name)
        self._defined[ident] = 0
        self._release(ident)

    def _isa_update(self, name: str, record: MutationRecord) -> None:
        ident = self.table.id_of(name)
        if ident is None or not self._defined[ident]:
            self.mark_dirty()
            return
        kind = record.kind
        if kind == "add_supertype":
            self._link_parent(ident, record.payload["supertype"])
        elif kind == "remove_supertype":
            self._unlink_parent(ident, record.payload["supertype"])
        else:  # set_supertypes
            old = self._parents[ident]
            released = list(old) if old else []
            for pid in released:
                self._own(pid)
                bucket = self._children[pid]
                if bucket is not None and ident in bucket:
                    bucket.remove(ident)
            self._parents[ident] = None
            for parent in record.payload["supertypes"]:
                self._link_parent(ident, parent)
            for pid in released:
                self._release(pid)

    def _clear_refs(self, ident: int) -> None:
        row = self._refs_out[ident]
        if not row:
            self._refs_out[ident] = None
            return
        released = list(row)
        self._refs_out[ident] = None
        for tid in released:
            self._own(tid)
            bucket = self._refs_in[tid]
            if bucket is not None and ident in bucket:
                bucket.remove(ident)
        for tid in released:
            self._release(tid)

    def _set_refs(self, ident: int, targets: Iterable[str]) -> None:
        old = self._refs_out[ident]
        old_ids = set(old) if old else set()
        new_row = array("i")
        new_ids: set[int] = set()
        for target in targets:
            tid = self.table.acquire(target)
            self._ensure_row(tid)
            new_row.append(tid)
            new_ids.add(tid)
            if tid not in old_ids:
                self._own(tid)
                bucket = self._refs_in[tid]
                if bucket is None:
                    self._refs_in[tid] = array("i", (ident,))
                elif ident not in bucket:
                    bucket.append(ident)
        self._refs_out[ident] = new_row
        stale = [tid for tid in old_ids if tid not in new_ids]
        for tid in stale:
            self._own(tid)
            bucket = self._refs_in[tid]
            if bucket is not None and ident in bucket:
                bucket.remove(ident)
        # Old row held one reference per occurrence; it was a set, so
        # one per id.  Release after the new row's acquires so a target
        # referenced by both never transits the free list.
        if old:
            for tid in old:
                self._release(tid)

    def _flush(self) -> None:
        """Re-derive the reference columns of every pending owner."""
        if not self._pending:
            return
        interfaces = self._schema.interfaces
        pending, self._pending = self._pending, set()
        for name in pending:
            interface = interfaces.get(name)
            if interface is None:
                continue  # removed later in the stream; already cleared
            ident = self.table.id_of(name)
            if ident is None or not self._defined[ident]:
                self.mark_dirty()
                return
            self._set_refs(ident, interface.referenced_type_names())

    def _rebuild(self) -> None:
        self.mark_dirty()
        self._dirty = False
        self.rebuilds += 1
        for interface in self._schema:
            self._define(interface.name, tuple(interface.supertypes))
        for interface in self._schema:
            ident = self.table.id_of(interface.name)
            assert ident is not None
            self._set_refs(ident, interface.referenced_type_names())

    def ensure_fresh(self) -> bool:
        """Rebuild if dirty; True when a scan rebuild happened."""
        base = self._base
        if base is not None and base.version != self._base_version:
            # The base mutated after the fork: shared rows may have been
            # edited in place under us, so the overlay is unsound.  Drop
            # it and rebuild from this store's own schema.
            self.mark_dirty()
        if self._dirty:
            self._rebuild()
            return True
        return False

    def fork_view(self, schema: "Schema") -> "ColumnarAdjacency":
        """An overlay copy of this store for a CoW fork of the schema.

        O(ids) pointer work: the name table, outer column lists, and
        defined bits are copied; the inner ``array('i')`` rows are
        shared and privatised lazily by :meth:`_own`.  The view pins
        :attr:`version` so any later base mutation invalidates it
        (see :meth:`ensure_fresh`); while the base stays unmutated the
        fork answers queries with zero scan rebuilds.
        """
        self.ensure_fresh()
        self._flush()
        if self._dirty:  # _flush found the stream out of sync
            self._rebuild()
        dup = ColumnarAdjacency.__new__(ColumnarAdjacency)
        dup._schema = schema
        dup.table = self.table.copy()
        dup._parents = list(self._parents)
        dup._children = list(self._children)
        dup._refs_out = list(self._refs_out)
        dup._refs_in = list(self._refs_in)
        dup._defined = bytearray(self._defined)
        dup._pending = set()
        dup._dirty = False
        dup.rebuilds = 0
        dup.version = 0
        dup._owned = set()
        dup._base = self
        dup._base_version = self.version
        return dup

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def parents_of(self, name: str) -> tuple[str, ...]:
        """Declared supertypes of *name*, in declaration order.

        Dangling supertype names are included -- the parents row mirrors
        the interface's declaration, not the resolved hierarchy.
        """
        self.ensure_fresh()
        ident = self.table.id_of(name)
        if ident is None or not self._defined[ident]:
            return ()
        row = self._parents[ident]
        if not row:
            return ()
        name_of = self.table.name_of
        return tuple(name_of(i) for i in row)

    def descendants_of(self, name: str) -> set[str]:
        """Transitive subtypes of *name*; excludes *name* itself."""
        self.ensure_fresh()
        ident = self.table.id_of(name)
        if ident is None:
            return set()
        return self._descend([ident])

    def descendants_closure(self, seeds: Iterable[str]) -> set[str]:
        """Every descendant of any seed (seeds excluded unless reached)."""
        self.ensure_fresh()
        id_of = self.table.id_of
        roots = [i for i in map(id_of, seeds) if i is not None]
        return self._descend(roots)

    def _descend(self, roots: list[int]) -> set[str]:
        children = self._children
        seen: set[int] = set()
        frontier: list[int] = []
        for root in roots:
            bucket = children[root]
            if bucket:
                frontier.extend(bucket)
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            bucket = children[current]
            if bucket:
                frontier.extend(bucket)
        name_of = self.table.name_of
        return {name_of(i) for i in seen}

    def referencers_of(self, target: str) -> set[str]:
        """Names of defined interfaces whose definition mentions *target*."""
        self.ensure_fresh()
        self._flush()
        tid = self.table.id_of(target)
        if tid is None:
            return set()
        bucket = self._refs_in[tid]
        if not bucket:
            return set()
        name_of = self.table.name_of
        return {name_of(i) for i in bucket}

    def refs_of(self, name: str) -> frozenset[str]:
        """Names referenced by interface *name* (empty if undefined)."""
        self.ensure_fresh()
        self._flush()
        ident = self.table.id_of(name)
        if ident is None or not self._defined[ident]:
            return frozenset()
        row = self._refs_out[ident]
        if not row:
            return frozenset()
        name_of = self.table.name_of
        return frozenset(name_of(i) for i in row)

    # ------------------------------------------------------------------
    # Differential exports (dict-shaped views of the columns)
    # ------------------------------------------------------------------

    def isa_parents_map(self) -> dict[str, tuple[str, ...]]:
        self.ensure_fresh()
        name_of = self.table.name_of
        result: dict[str, tuple[str, ...]] = {}
        for ident, row in enumerate(self._parents):
            if self._defined[ident]:
                result[name_of(ident)] = (
                    tuple(name_of(p) for p in row) if row else ()
                )
        return result

    def isa_children_map(self) -> dict[str, set[str]]:
        """Parent name -> subtype-name set (non-empty buckets only)."""
        self.ensure_fresh()
        name_of = self.table.name_of
        result: dict[str, set[str]] = {}
        for ident, row in enumerate(self._children):
            if row:
                result[name_of(ident)] = {name_of(c) for c in row}
        return result

    def refs_of_map(self) -> dict[str, frozenset[str]]:
        self.ensure_fresh()
        self._flush()
        name_of = self.table.name_of
        result: dict[str, frozenset[str]] = {}
        for ident, row in enumerate(self._refs_out):
            if self._defined[ident]:
                result[name_of(ident)] = (
                    frozenset(name_of(t) for t in row) if row else frozenset()
                )
        return result

    def referencers_map(self) -> dict[str, set[str]]:
        """Target name -> referencing-owner set (non-empty buckets only)."""
        self.ensure_fresh()
        self._flush()
        name_of = self.table.name_of
        result: dict[str, set[str]] = {}
        for ident, row in enumerate(self._refs_in):
            if row:
                result[name_of(ident)] = {name_of(o) for o in row}
        return result

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        return {
            "ids": len(self.table),
            "capacity": self.table.capacity,
            "free_ids": self.table.free_ids,
            "rebuilds": self.rebuilds,
            "pending": len(self._pending),
        }

    def check_integrity(self) -> list[str]:
        """Re-derive every refcount / row invariant; [] when sound.

        Part of the differential contract: the property tests and the
        ``columnar-vs-dict-adjacency`` invariant call this so a
        refcount drift surfaces at the op that caused it, not at the
        eventual use-after-free.
        """
        self.ensure_fresh()
        self._flush()
        problems: list[str] = []
        expected: dict[int, int] = {}
        for ident in range(self.table.capacity):
            if self._defined[ident]:
                expected[ident] = expected.get(ident, 0) + 1
        for column in (self._parents, self._refs_out):
            for row in column:
                if row:
                    for target in row:
                        expected[target] = expected.get(target, 0) + 1
        for ident in range(self.table.capacity):
            want = expected.get(ident, 0)
            try:
                name = self.table.name_of(ident)
            except KeyError:
                name = None
            if name is None:
                if want:
                    problems.append(
                        f"freed id {ident} still has {want} row references"
                    )
                continue
            have = self.table.refcount(ident)
            if have != want:
                problems.append(
                    f"id {ident} ({name!r}): refcount {have}, rows say {want}"
                )
            if self.table.id_of(name) != ident:
                problems.append(f"name {name!r} does not map back to {ident}")
        # refs_in must be exactly the transpose of refs_out.
        transpose: dict[int, set[int]] = {}
        for owner, row in enumerate(self._refs_out):
            if row:
                for target in row:
                    transpose.setdefault(target, set()).add(owner)
        for target in range(len(self._refs_in)):
            bucket = self._refs_in[target]
            have_set = set(bucket) if bucket else set()
            if have_set != transpose.get(target, set()):
                problems.append(
                    f"refs_in[{target}] is not the transpose of refs_out"
                )
        return problems


class DictAdjacency:
    """The dict-of-sets adjacency: retained reference specification.

    This is the PR 6 incremental implementation, verbatim in
    behaviour: parent tuples and child sets keyed by name, a lazily
    folded reverse-reference map, full lazy rebuild when dirty.  The
    columnar store is differentially checked against it after every
    operation (``columnar-vs-dict-adjacency``, plus the property tests
    in ``tests/test_columnar_adjacency.py``).
    """

    __slots__ = (
        "_schema",
        "_isa_children",
        "_isa_parents",
        "_isa_dirty",
        "_refs_of",
        "_referencers",
        "_refs_pending",
        "_refs_dirty",
    )

    def __init__(self, schema: "Schema", subscribe: bool = False) -> None:
        self._schema = schema
        self._isa_children: dict[str, set[str]] = {}
        self._isa_parents: dict[str, tuple[str, ...]] = {}
        self._isa_dirty = True
        self._refs_of: dict[str, frozenset[str]] = {}
        self._referencers: dict[str, set[str]] = {}
        self._refs_pending: set[str] = set()
        self._refs_dirty = True
        if subscribe:
            schema.log.subscribe(self.observe)

    # -- spine feed (identical protocol) -------------------------------

    def observe(self, record: MutationRecord) -> None:
        kind = record.kind
        if kind == "scope":
            return
        name = record.interface
        if name is not None:
            if not self._refs_dirty:
                self._refs_pending.add(name)
            if not self._isa_dirty:
                if kind in ISA_KINDS:
                    self._isa_update(name, record)
                elif kind == "add_interface":
                    self._isa_link(
                        name, tuple(self._schema.interfaces[name].supertypes)
                    )
                elif kind == "remove_interface":
                    self._isa_unlink(name)
        elif not replayable_kind(kind):
            self._isa_dirty = True
            self._refs_dirty = True

    def _isa_link(self, name: str, parents: tuple[str, ...]) -> None:
        self._isa_parents[name] = parents
        children = self._isa_children
        for parent in parents:
            children.setdefault(parent, set()).add(name)

    def _isa_unlink(self, name: str) -> None:
        children = self._isa_children
        for parent in self._isa_parents.pop(name, ()):
            bucket = children.get(parent)
            if bucket is not None:
                bucket.discard(name)

    def _isa_update(self, name: str, record: MutationRecord) -> None:
        kind = record.kind
        parents = self._isa_parents.get(name, ())
        children = self._isa_children
        if kind == "add_supertype":
            supertype = record.payload["supertype"]
            self._isa_parents[name] = parents + (supertype,)
            children.setdefault(supertype, set()).add(name)
        elif kind == "remove_supertype":
            supertype = record.payload["supertype"]
            self._isa_parents[name] = tuple(
                parent for parent in parents if parent != supertype
            )
            bucket = children.get(supertype)
            if bucket is not None:
                bucket.discard(name)
        else:  # set_supertypes
            new = tuple(record.payload["supertypes"])
            self._isa_parents[name] = new
            new_set = set(new)
            for parent in parents:
                if parent not in new_set:
                    bucket = children.get(parent)
                    if bucket is not None:
                        bucket.discard(name)
            old_set = set(parents)
            for parent in new:
                if parent not in old_set:
                    children.setdefault(parent, set()).add(name)

    # -- lazy folds ----------------------------------------------------

    def _isa_sets(self) -> dict[str, set[str]]:
        if self._isa_dirty:
            self._isa_children = {}
            self._isa_parents = {}
            for interface in self._schema:
                self._isa_link(interface.name, tuple(interface.supertypes))
            self._isa_dirty = False
        return self._isa_children

    def _fold_refs(self) -> None:
        interfaces = self._schema.interfaces
        if self._refs_dirty:
            self._refs_of = {}
            self._referencers = {}
            referencers = self._referencers
            for interface in self._schema:
                refs = frozenset(interface.referenced_type_names())
                self._refs_of[interface.name] = refs
                for target in refs:
                    referencers.setdefault(target, set()).add(interface.name)
            self._refs_dirty = False
            self._refs_pending.clear()
            return
        if not self._refs_pending:
            return
        referencers = self._referencers
        for name in self._refs_pending:
            interface = interfaces.get(name)
            new = (
                frozenset(interface.referenced_type_names())
                if interface is not None
                else frozenset()
            )
            old = self._refs_of.get(name, frozenset())
            for target in old - new:
                bucket = referencers.get(target)
                if bucket is not None:
                    bucket.discard(name)
            for target in new - old:
                referencers.setdefault(target, set()).add(name)
            if interface is None:
                self._refs_of.pop(name, None)
            else:
                self._refs_of[name] = new
        self._refs_pending.clear()

    # -- queries (same API as ColumnarAdjacency) -----------------------

    def descendants_of(self, name: str) -> set[str]:
        children = self._isa_sets()
        result: set[str] = set()
        frontier = list(children.get(name, ()))
        while frontier:
            current = frontier.pop()
            if current in result:
                continue
            result.add(current)
            bucket = children.get(current)
            if bucket:
                frontier.extend(bucket)
        return result

    def descendants_closure(self, seeds: Iterable[str]) -> set[str]:
        children = self._isa_sets()
        result: set[str] = set()
        frontier: list[str] = []
        for seed in seeds:
            bucket = children.get(seed)
            if bucket:
                frontier.extend(bucket)
        while frontier:
            current = frontier.pop()
            if current in result:
                continue
            result.add(current)
            bucket = children.get(current)
            if bucket:
                frontier.extend(bucket)
        return result

    def referencers_of(self, target: str) -> set[str]:
        self._fold_refs()
        owners = self._referencers.get(target)
        return set(owners) if owners else set()

    def refs_of(self, name: str) -> frozenset[str]:
        self._fold_refs()
        return self._refs_of.get(name, frozenset())

    def isa_parents_map(self) -> dict[str, tuple[str, ...]]:
        self._isa_sets()
        return dict(self._isa_parents)

    def isa_children_map(self) -> dict[str, set[str]]:
        children = self._isa_sets()
        return {
            parent: set(bucket) for parent, bucket in children.items() if bucket
        }

    def refs_of_map(self) -> dict[str, frozenset[str]]:
        self._fold_refs()
        return dict(self._refs_of)

    def referencers_map(self) -> dict[str, set[str]]:
        self._fold_refs()
        return {
            target: set(owners)
            for target, owners in self._referencers.items()
            if owners
        }


def adjacency_differential(
    columnar: ColumnarAdjacency, reference: DictAdjacency
) -> list[str]:
    """Mismatch messages between the flat-array store and the dict spec.

    Compares all four exported views plus the columnar store's internal
    refcount integrity; [] means the two implementations agree exactly
    on the current schema state.
    """
    problems = list(columnar.check_integrity())
    pairs = (
        ("isa_parents", columnar.isa_parents_map(), reference.isa_parents_map()),
        (
            "isa_children",
            columnar.isa_children_map(),
            reference.isa_children_map(),
        ),
        ("refs_of", columnar.refs_of_map(), reference.refs_of_map()),
        (
            "referencers",
            columnar.referencers_map(),
            reference.referencers_map(),
        ),
    )
    for label, flat, spec in pairs:
        if flat == spec:
            continue
        missing = sorted(set(spec) - set(flat))[:3]
        spurious = sorted(set(flat) - set(spec))[:3]
        differing = sorted(
            key for key in set(flat) & set(spec) if flat[key] != spec[key]
        )[:3]
        problems.append(
            f"{label}: columnar != dict spec "
            f"(missing {missing!r}, spurious {spurious!r}, "
            f"differing {differing!r})"
        )
    return problems
