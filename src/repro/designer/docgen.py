"""Design-document generation: the written deliverable of a session.

Activity 11 of the paper's project list: "Specification of an approach
to generating deliverables for designer feedback as a result of shrink
wrap schema customization."  Besides the custom schema and the mapping,
a design effort wants a *document*: this module renders a complete
Markdown design document for a schema or a whole repository -- overview
metrics, the concept schema inventory with explanations, per-type
reference, the customization record, and the extended-ODL appendix.
"""

from __future__ import annotations

from repro.analysis.metrics import decomposition_payoff, schema_metrics
from repro.concepts.decompose import Decomposition, decompose
from repro.designer.explain import explain_concept
from repro.model.schema import Schema
from repro.odl.printer import print_schema


def document_schema(
    schema: Schema, decomposition: Decomposition | None = None
) -> str:
    """A Markdown design document for one schema."""
    decomposition = decomposition or decompose(schema)
    sections = [
        f"# Schema design document: {schema.name}",
        "",
        "## Overview",
        "",
        "```",
        schema_metrics(schema).render(),
        "```",
        "",
        decomposition_payoff(schema, decomposition).render(),
        "",
        "## Concept schemas",
        "",
    ]
    for concept in decomposition.all_concepts():
        sections.append(f"### {concept.identifier} — {concept.kind.label()}")
        sections.append("")
        sections.append(explain_concept(concept, schema))
        sections.append("")
    sections.extend(
        [
            "## Object type reference",
            "",
        ]
    )
    for interface in schema:
        sections.append(f"### {interface.name}")
        sections.append("")
        rows = ["| member | kind | detail |", "|---|---|---|"]
        for attribute in interface.attributes.values():
            rows.append(
                f"| {attribute.name} | attribute | {attribute.type} |"
            )
        for end in interface.relationships.values():
            many = "many" if end.is_to_many else "one"
            rows.append(
                f"| {end.name} | {end.kind.value} | to {many} "
                f"{end.target_type} (inverse "
                f"{end.inverse_type}::{end.inverse_name}) |"
            )
        for operation in interface.operations.values():
            rows.append(
                f"| {operation.name} | operation | "
                f"`{operation.signature()}` |"
            )
        if len(rows) == 2:
            rows.append("| *(no members)* | | |")
        sections.extend(rows)
        sections.append("")
    sections.extend(
        [
            "## Appendix: extended ODL",
            "",
            "```",
            print_schema(schema).rstrip(),
            "```",
            "",
        ]
    )
    return "\n".join(sections)


def document_repository(repository) -> str:
    """A Markdown document for a whole customization effort.

    Covers the shrink wrap schema, the customization record (requested
    operations with their concept schema context), the mapping summary,
    any local names, and the resulting custom schema document.
    """
    workspace = repository.workspace
    sections = [
        f"# Customization record: {repository.shrink_wrap.name} -> "
        f"{workspace.schema.name}",
        "",
        "## Customization steps",
        "",
    ]
    if workspace.log:
        sections.append("| # | concept schema | operation | cascades |")
        sections.append("|---|---|---|---|")
        for index, entry in enumerate(workspace.log, start=1):
            sections.append(
                f"| {index} | {entry.concept_id or '-'} | "
                f"`{entry.requested.to_text()}` | {len(entry.plan) - 1} |"
            )
    else:
        sections.append("*(no changes applied)*")
    sections.append("")
    mapping = repository.mapping
    if mapping is None and repository.custom_schema is not None:
        mapping = repository.generate_mapping()
    if mapping is not None:
        sections.extend(
            [
                "## Mapping summary",
                "",
                "```",
                mapping.render(),
                "```",
                "",
            ]
        )
    if repository.local_names.aliases:
        sections.extend(
            [
                "## Local names",
                "",
                "```",
                repository.local_names.render(),
                "```",
                "",
            ]
        )
    sections.append(document_schema(workspace.schema))
    return "\n".join(sections)
