"""Columnar-core scaling curve: the 100k-type regime (ISSUE 8).

PR 8 moves the hot adjacency of :class:`~repro.model.index.SchemaIndex`
onto a struct-of-arrays store (interned name ids, flat ``array('i')``
parents / children / reference columns with free-list reuse -- DESIGN
5i) and makes post-plan verification O(changed) via the spine's
touched-interface set.  This bench records the types-axis curve the
ISSUE asks for at 200 / 1k / 10k / 100k types:

* ``build``    -- workload generation of the reference schema;
* ``plan``     -- the same 100-op seeded plan through the fused
  compiled path (median, state undone between reps);
* ``fork``     -- one what-if branch of the evolved workspace;
* ``verify``   -- a full structural sweep (``validate_schema``, the
  O(types + ends) reference scan; the *invariant-registry* full sweep
  is quadratic in schema size by design -- its per-type probes call
  O(types) scans -- so past 10k types it exists only as the fuzzer's
  final check, not a per-plan cost);
* ``scoped``   -- the O(changed) post-plan sweep: ``check_schema``
  fed the plan's touched-interface closure (DESIGN 5i).

plus peak-RSS and tracemalloc deltas for the build, all merged into
``BENCH_PR8.json`` (see the BENCH_* convention in ``conftest.py``).

Floors: at full scale the 100-op compiled plan stays under 1 s median
and peak RSS under 2 GB at 100k types.  The smoke configuration (CI's
``bench-columnar-smoke``) runs the 200 / 1k points only and asserts
the 1k compiled-plan point regresses < 20 % against the frozen
``BENCH_PR6.json`` baseline.
"""

from __future__ import annotations

import gc
import json
import os
import resource
import statistics
import time
import tracemalloc
from pathlib import Path

import pytest

from benchmarks.conftest import merge_bench_results
from repro.model.validation import validate_schema
from repro.repository.workspace import Workspace
from repro.verify.invariants import check_schema
from repro.workload.generator import (
    WorkloadSpec,
    generate_operations,
    generate_schema,
)

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
STRICT = not SMOKE
SIZES = (200, 1_000) if SMOKE else (200, 1_000, 10_000, 100_000)
PLAN_OPS = 100  # the smoke floor compares against a 100-op baseline
PLAN_FLOOR_SECONDS = 1.0
RSS_FLOOR_MB = 2048
#: < 20 % regression vs the frozen PR 6 compiled-plan point at 1k types.
SMOKE_REGRESSION_FACTOR = 1.20

BENCH_PR6_JSON = Path(__file__).parent.parent / "BENCH_PR6.json"


def _repeats(size: int) -> int:
    return 3 if size >= 100_000 else 5


def _spec(size: int) -> WorkloadSpec:
    return WorkloadSpec(
        types=size,
        seed=42,
        isa_fraction=0.45,
        part_of_chain=min(100, max(4, size // 4)),
        instance_of_chain=min(50, max(3, size // 8)),
    )


def _rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _plan_times(
    workspace: Workspace, operations: list, size: int
) -> tuple[float, float]:
    """(median, best) compiled-plan apply times over the repeat budget."""
    # Flush garbage left by earlier bench modules first: a cycle
    # collection landing inside a timed rep inflates the median by
    # 20-40% when this module runs late in the bench-smoke sweep,
    # which made the cross-PR smoke floor flake on an idle machine.
    gc.collect()
    times = []
    for _ in range(_repeats(size)):
        plan = list(operations)
        start = time.perf_counter()
        entries = workspace.apply_plan_compiled(plan)
        times.append(time.perf_counter() - start)
        for _ in range(len(entries)):
            workspace.undo_last()
    return statistics.median(times), min(times)


def _scoped_verify_time(workspace: Workspace, operations: list) -> float:
    """Apply the plan once, then time the O(changed) post-plan sweep."""
    schema = workspace.schema
    seq_before = schema.log.seq
    entries = workspace.apply_plan_compiled(list(operations))
    touched: set[str] = set()
    for record in schema.log.records_since(seq_before):
        touched.update(record.names())
    start = time.perf_counter()
    violations = check_schema(schema, touched=touched)
    elapsed = time.perf_counter() - start
    assert not violations, violations[:3]
    for _ in range(len(entries)):
        workspace.undo_last()
    return elapsed


def test_bench_columnar_scaling(report, record_bench):
    """200 / 1k / 10k / 100k curve over the columnar core."""
    rows = []
    results: dict[str, dict] = {}
    best_plan: dict[int, float] = {}
    for size in SIZES:
        tracemalloc.start()
        start = time.perf_counter()
        schema = generate_schema(_spec(size))
        build = time.perf_counter() - start
        _, traced_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        traced_mb = traced_peak / (1024 * 1024)

        workspace = Workspace(schema)
        operations = list(generate_operations(workspace.schema, PLAN_OPS, seed=11))
        plan, best_plan[size] = _plan_times(workspace, operations, size)
        scoped = _scoped_verify_time(workspace, operations)

        start = time.perf_counter()
        workspace.fork("bench_fork")
        fork = time.perf_counter() - start

        start = time.perf_counter()
        issues = validate_schema(workspace.schema)
        verify = time.perf_counter() - start
        assert not issues, issues[:3]

        rss = _rss_mb()
        rows.append((size, build, plan, fork, verify, scoped, traced_mb, rss))
        for metric, value in (
            ("build", build), ("plan_compiled", plan), ("fork", fork),
            ("full_verify", verify), ("scoped_verify", scoped),
        ):
            results[f"columnar_{metric}[{size}]"] = {
                "median_seconds": value,
                "types": size,
                "plan_ops": PLAN_OPS,
            }
        results[f"columnar_build_memory[{size}]"] = {
            "median_seconds": None,
            "types": size,
            "tracemalloc_peak_mb": round(traced_mb, 1),
            "peak_rss_mb": round(rss, 1),
        }
        record_bench(f"columnar_plan_compiled[{size}]", plan, types=size)

    lines = [
        f"{'types':>7}  {'build':>8}  {'plan':>8}  {'fork':>8}  "
        f"{'verify':>8}  {'scoped':>8}  {'traced':>8}  {'rss':>8}"
    ]
    for size, build, plan, fork, verify, scoped, traced_mb, rss in rows:
        lines.append(
            f"{size:>7}  {build:>7.2f}s  {plan * 1000:>6.1f}ms  "
            f"{fork * 1000:>6.1f}ms  {verify * 1000:>6.1f}ms  "
            f"{scoped * 1000:>6.1f}ms  {traced_mb:>6.0f}MB  {rss:>6.0f}MB"
        )
    report("columnar_scaling", "\n".join(lines))

    if not SMOKE:
        merge_bench_results(results)

    if STRICT:
        largest = rows[-1]
        assert largest[0] == 100_000
        assert largest[2] < PLAN_FLOOR_SECONDS, (
            f"compiled 100-op plan at 100k types took "
            f"{largest[2]:.3f}s median (floor {PLAN_FLOOR_SECONDS:.1f}s)"
        )
        assert largest[7] < RSS_FLOOR_MB, (
            f"peak RSS at 100k types was {largest[7]:.0f}MB "
            f"(floor {RSS_FLOOR_MB}MB)"
        )
    else:
        # CI smoke floor: the columnar compiled-plan point at 1k types
        # must stay within 20 % of the frozen PR 6 baseline.  Compared
        # against the *best* rep, not the median: when this module runs
        # late in the bench-smoke sweep the median carries 20-40% of
        # process noise from earlier modules (the standalone
        # bench-columnar-smoke CI job measures the same point at a
        # steady ~17ms), and a real regression shifts the minimum too.
        if not BENCH_PR6_JSON.exists():
            pytest.skip("BENCH_PR6.json baseline not present")
        baseline = json.loads(BENCH_PR6_JSON.read_text(encoding="utf-8"))
        entry = baseline.get("compact_plan_compiled[1000]")
        if not entry or not entry.get("median_seconds"):
            pytest.skip("no compact_plan_compiled[1000] baseline recorded")
        floor = entry["median_seconds"] * SMOKE_REGRESSION_FACTOR
        point = best_plan[1_000]
        assert point < floor, (
            f"columnar compiled-plan at 1k types took {point * 1000:.1f}ms "
            f"best-of-reps, > {SMOKE_REGRESSION_FACTOR:.0%} of the PR 6 "
            f"baseline ({entry['median_seconds'] * 1000:.1f}ms)"
        )
