"""The EMSL software-version schema (Figure 6): an instance-of chain.

"The C compiler is an application object that is related to many
versions of C compilers including version 3.0.  The version 3.0 may have
been compiled on many different machines, each compilation creating a
compiled version 3.0 executable ... The executable is in turn installed
on many machines, each installation creating an installed version 3.0."

The chain Application -> Application_Version -> Compiled_Version ->
Installed_Version is linear, matching the paper's experience that
instance-of hierarchies "have been linear with no branches".
"""

from __future__ import annotations

from repro.model.schema import Schema
from repro.odl.parser import parse_schema

SOFTWARE_ODL = """
// Figure 6: the EMSL software instance-of sequence.

interface Application {
    extent applications;
    keys (name);
    attribute string(40) name;
    attribute string(200) description;
    instance_of relationship set<Application_Version> versions
        inverse Application_Version::version_of;
};

interface Application_Version {
    extent application_versions;
    attribute string(10) version_number;
    attribute date released;
    instance_of relationship Application version_of
        inverse Application::versions;
    instance_of relationship set<Compiled_Version> compilations
        inverse Compiled_Version::compiled_version_of;
};

interface Compiled_Version {
    attribute string(30) target_architecture;
    attribute string(30) compiler_used;
    attribute date compiled_on;
    instance_of relationship Application_Version compiled_version_of
        inverse Application_Version::compilations;
    instance_of relationship set<Installed_Version> installations
        inverse Installed_Version::installed_version_of;
};

interface Installed_Version {
    attribute string(40) machine;
    attribute string(120) path;
    attribute date installed_on;
    instance_of relationship Compiled_Version installed_version_of
        inverse Compiled_Version::installations;
};
"""


def software_schema(name: str = "emsl_software") -> Schema:
    """Parse and return the software-version schema."""
    schema = parse_schema(SOFTWARE_ODL, name=name)
    schema.validate()
    return schema
