"""One AST load of the codebase, shared by every lint pass.

The legacy ``tools/`` scripts each re-read and re-parsed the model
sources (and each re-derived ``SRC = Path(__file__)...`` to find them).
:class:`Codebase` centralises that: it walks a package root once,
parses every module with the stdlib :mod:`ast`, and exposes a uniform
view -- module trees, top-level classes and functions, import aliases,
and a static MRO walk -- that the call-graph resolver and the passes
build on.

Two constructors matter:

* :meth:`Codebase.load` parses a real package directory (by default the
  in-repo ``src/repro``); the CLI's ``--root`` flag points it at an
  alternate tree, which is how fixture tests seed violations.
* :meth:`Codebase.from_sources` builds a codebase from in-memory
  source snippets, for focused pass-level unit tests.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

#: default package root: the ``src`` directory two levels above this file
DEFAULT_SRC = Path(__file__).resolve().parents[2]
DEFAULT_PACKAGE = "repro"


@dataclass
class ModuleInfo:
    """A parsed module plus the symbol tables the passes query."""

    name: str
    path: str
    tree: ast.Module
    classes: dict[str, ast.ClassDef] = field(default_factory=dict)
    functions: dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: local alias -> (source module, symbol | None for plain ``import m``)
    imports: dict[str, tuple[str, str | None]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for node in self.tree.body:
            if isinstance(node, ast.ClassDef):
                self.classes[node.name] = node
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if isinstance(node, ast.FunctionDef):
                    self.functions[node.name] = node
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.imports[local] = (alias.name, None)
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.imports[local] = (node.module, alias.name)


class Codebase:
    """Every module of one package, parsed once."""

    def __init__(self, modules: dict[str, ModuleInfo]) -> None:
        self.modules = modules

    @classmethod
    def load(
        cls,
        root: Path | None = None,
        package: str = DEFAULT_PACKAGE,
    ) -> "Codebase":
        """Parse ``root/package/**/*.py`` (default: the in-repo source)."""
        base = (root or DEFAULT_SRC) / package
        modules: dict[str, ModuleInfo] = {}
        for path in sorted(base.rglob("*.py")):
            relative = path.relative_to(base.parent)
            parts = list(relative.with_suffix("").parts)
            if parts[-1] == "__init__":
                parts.pop()
            name = ".".join(parts)
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
            modules[name] = ModuleInfo(name=name, path=str(path), tree=tree)
        if not modules:
            raise FileNotFoundError(f"no modules under {base}")
        return cls(modules)

    @classmethod
    def from_sources(cls, sources: dict[str, str]) -> "Codebase":
        """Build a codebase from ``{module name: source text}`` snippets."""
        modules = {
            name: ModuleInfo(
                name=name,
                path=f"<{name}>",
                tree=ast.parse(text, filename=f"<{name}>"),
            )
            for name, text in sources.items()
        }
        return cls(modules)

    # ------------------------------------------------------------------
    # lookups

    def module(self, name: str) -> ModuleInfo | None:
        return self.modules.get(name)

    def resolve_import(
        self, module: ModuleInfo, local_name: str
    ) -> tuple[str, str | None] | None:
        """Where *local_name* in *module* comes from, if imported."""
        return module.imports.get(local_name)

    def find_class(self, class_name: str) -> list[tuple[ModuleInfo, ast.ClassDef]]:
        """Every definition of *class_name* across the codebase."""
        return [
            (info, info.classes[class_name])
            for info in self.modules.values()
            if class_name in info.classes
        ]

    def class_in(self, module_name: str, class_name: str) -> ast.ClassDef | None:
        info = self.modules.get(module_name)
        if info is None:
            return None
        return info.classes.get(class_name)

    # ------------------------------------------------------------------
    # static MRO

    def mro_methods(
        self, module_name: str, class_name: str
    ) -> dict[str, tuple[ModuleInfo, ast.FunctionDef]]:
        """Methods of a class, following base classes left-to-right.

        A statically linearised walk (depth-first over resolvable base
        names, earliest definition wins) -- not full C3, but faithful
        for the single-chain hierarchies this codebase uses.
        """
        collected: dict[str, tuple[ModuleInfo, ast.FunctionDef]] = {}
        seen: set[tuple[str, str]] = set()
        stack: list[tuple[str, str]] = [(module_name, class_name)]
        while stack:
            mod_name, cls_name = stack.pop(0)
            if (mod_name, cls_name) in seen:
                continue
            seen.add((mod_name, cls_name))
            info = self.modules.get(mod_name)
            if info is None:
                continue
            node = info.classes.get(cls_name)
            if node is None:
                continue
            for item in node.body:
                if isinstance(item, ast.FunctionDef) and item.name not in collected:
                    collected[item.name] = (info, item)
            for base in node.bases:
                resolved = self._resolve_base(info, base)
                if resolved is not None:
                    stack.append(resolved)
        return collected

    def _resolve_base(
        self, info: ModuleInfo, base: ast.expr
    ) -> tuple[str, str] | None:
        if isinstance(base, ast.Name):
            if base.id in info.classes:
                return (info.name, base.id)
            imported = info.imports.get(base.id)
            if imported is not None and imported[1] is not None:
                return (imported[0], imported[1])
        elif isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
            imported = info.imports.get(base.value.id)
            if imported is not None and imported[1] is None:
                return (imported[0], base.attr)
        return None

    # ------------------------------------------------------------------
    # display helpers

    def location(self, module_name: str, lineno: int) -> str:
        info = self.modules.get(module_name)
        path = info.path if info is not None else module_name
        return f"{path}:{lineno}"
