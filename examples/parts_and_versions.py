"""Aggregation and instance-of concept schemas (Figures 5 and 6).

Two points of view that wagon wheels cannot show: the lumber yard's
house parts explosion (a rooted aggregation hierarchy) and the EMSL
software version chain (an instance-of hierarchy).  The example renders
both, customizes each through its own concept schema -- re-wiring the
parts explosion and extending the version chain -- and exports the
schemas as Graphviz DOT for anyone who wants pictures.

Run with::

    python examples/parts_and_versions.py
"""

from repro.catalog import house_schema, software_schema
from repro.concepts import decompose
from repro.designer import (
    DesignSession,
    render_aggregation,
    render_instance_of,
    to_dot,
)
from repro.repository import SchemaRepository


def parts_explosion() -> None:
    session = DesignSession(
        SchemaRepository(house_schema(), custom_name="custom_house")
    )
    print("=== the house parts explosion (Figure 5) ===")
    print(session.select("ah:House"))

    print()
    print("=== re-wiring: gutters join the roof ===")
    for text in (
        "add_type_definition(Gutter)",
        "add_attribute(Gutter, string(20), material)",
        "add_part_of_relationship(Roof, set<Gutter>, gutters, Gutter::of_roof)",
    ):
        applied = session.modify(text)
        print(f"  [{'ok ' if applied else 'REJ'}] {text}")

    custom = session.finish().custom_schema
    print()
    print(render_aggregation(decompose(custom).by_identifier("ah:House")))


def version_chain() -> None:
    session = DesignSession(
        SchemaRepository(software_schema(), custom_name="custom_software")
    )
    print()
    print("=== the software version chain (Figure 6) ===")
    print(session.select("ih:Application"))

    print()
    print("=== extending the chain: configured installations ===")
    for text in (
        "add_type_definition(Configured_Installation)",
        "add_attribute(Configured_Installation, string(120), config_path)",
        "add_instance_of_relationship(Installed_Version, "
        "set<Configured_Installation>, configurations, "
        "Configured_Installation::of_installation)",
    ):
        applied = session.modify(text)
        print(f"  [{'ok ' if applied else 'REJ'}] {text}")

    custom = session.finish().custom_schema
    print()
    print(render_instance_of(decompose(custom).by_identifier("ih:Application")))

    print()
    print("=== Graphviz export (first lines) ===")
    for line in to_dot(custom).splitlines()[:6]:
        print(f"  {line}")


def main() -> None:
    parts_explosion()
    version_chain()


if __name__ == "__main__":
    main()
