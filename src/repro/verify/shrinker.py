"""Delta-debugging a failing fuzz trace to a minimal reproducer.

A fuzz failure arrives as a concrete trace of up to a few hundred steps;
almost all of them are irrelevant.  :func:`shrink` applies the classic
ddmin chunk-removal loop -- coarse halves first, then progressively
finer granularity, finishing with one-by-one removal -- re-running the
trace through :func:`repro.verify.fuzzer.replay` after each candidate
deletion.  The oracle is pinned to the invariant names of the original
failure, so shrinking cannot wander off onto a different bug the
mutated trace happens to provoke.

Removing a step can only make later steps *reject* (a later operation
may reference a type an earlier deleted step would have created); a
rejected apply is a legal no-op under the closure contract, so every
subsequence of a trace is itself a valid trace.  That property is what
makes plain ddmin sound here.

:func:`emit_pytest` then renders the surviving steps as a ready-to-paste
pytest case -- primitives round-trip through the operation language
(``parse_operation``), composites through their constructor -- so every
fuzzer finding can be checked in as a permanent regression test.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.model.schema import Schema
from repro.verify.fuzzer import FuzzFailure, FuzzStep, replay


@dataclass
class ShrinkResult:
    """The minimal trace plus the failure it still reproduces."""

    steps: list[FuzzStep]
    failure: FuzzFailure
    original_length: int
    replays: int

    def summary(self) -> str:
        return (
            f"shrunk {self.original_length} -> {len(self.steps)} steps "
            f"in {self.replays} replays"
        )


def shrink(
    reference: Schema,
    trace: list[FuzzStep],
    failure: FuzzFailure,
    max_replays: int = 2000,
    with_populations: bool = False,
) -> ShrinkResult:
    """Minimize *trace* while it still reproduces *failure*'s invariants.

    Pass ``with_populations=True`` when the original run carried
    populations -- the population checks fire during replay too, and the
    ``wanted`` filter keeps the oracle locked on the failing family.
    """
    wanted = {violation.invariant for violation in failure.violations}
    replays = 0

    def still_fails(candidate: list[FuzzStep]) -> FuzzFailure | None:
        nonlocal replays
        replays += 1
        return replay(
            reference,
            candidate,
            check_every=1,
            invariant_filter=wanted,
            with_populations=with_populations,
        )

    # The trace beyond the failing step never ran; drop it outright.
    current = list(trace[: failure.step_index + 1])
    best_failure = still_fails(current)
    if best_failure is None:
        # The failure needs the end-of-run drain (or was itself found
        # there); keep the whole executed prefix and rely on replay's
        # final check.
        current = list(trace)
        best_failure = still_fails(current)
    if best_failure is None:
        raise ValueError(
            "trace does not reproduce its own failure deterministically"
        )

    granularity = 2
    while len(current) >= 2 and replays < max_replays:
        chunk = max(1, len(current) // granularity)
        removed_any = False
        start = 0
        while start < len(current) and replays < max_replays:
            candidate = current[:start] + current[start + chunk:]
            result = still_fails(candidate) if candidate else None
            if result is not None:
                current = candidate
                best_failure = result
                removed_any = True
                # same start now addresses the next chunk
            else:
                start += chunk
        if removed_any:
            granularity = max(granularity - 1, 2)
        elif chunk == 1:
            break
        else:
            granularity = min(granularity * 2, len(current))
    return ShrinkResult(current, best_failure, len(trace), replays)


# ----------------------------------------------------------------------
# Reproducer rendering
# ----------------------------------------------------------------------


def _composite_source(composite) -> str:
    """Constructor source for a composite (all fields are literals)."""
    parts = ", ".join(
        f"{field.name}={getattr(composite, field.name)!r}"
        for field in fields(composite)
    )
    return f"{type(composite).__name__}({parts})"


def _step_source(step: FuzzStep) -> str:
    if step.action == "apply":
        return f"_apply(workspace, {step.operation.to_text()!r})"
    if step.action == "apply_bare":
        return (
            f"_apply(workspace, {step.operation.to_text()!r}, propagate=False)"
        )
    if step.action == "composite":
        return f"_apply_composite(workspace, {_composite_source(step.composite)})"
    if step.action == "undo":
        return "workspace.undo_last()"
    if step.action == "redo":
        return "_redo(workspace)"
    if step.action == "reset":
        return "workspace.reset()"
    raise ValueError(f"unknown fuzz action {step.action!r}")


_PREAMBLE = '''\
"""Shrunk fuzzer reproducer -- generated by repro.verify.shrinker."""

from repro.catalog import load
from repro.model.errors import SchemaError
from repro.model.fingerprint import schemas_equal
from repro.ops.base import OperationError
from repro.ops.composite import (
    ExtractSupertype,
    IntroduceAbstractSupertype,
    SplitBySubtyping,
)
from repro.ops.language import parse_operation
from repro.repository.workspace import Workspace
from repro.verify.invariants import check_workspace
from repro.workload.generator import WorkloadSpec, generate_schema


def _apply(workspace, text, propagate=True):
    """Apply one operation; rejection is a legal no-op in a trace."""
    try:
        workspace.apply(parse_operation(text), propagate=propagate)
    except (OperationError, SchemaError):
        pass


def _apply_composite(workspace, composite):
    try:
        workspace.apply_composite(composite)
    except (OperationError, SchemaError):
        pass


def _redo(workspace):
    try:
        workspace.redo()
    except (OperationError, SchemaError):
        pass
'''


def emit_pytest(
    subject_source: str,
    steps: list[FuzzStep],
    failure: FuzzFailure,
    test_name: str = "test_shrunk_reproducer",
) -> str:
    """Render a shrunk trace as a standalone pytest module.

    *subject_source* is an expression evaluating to the reference schema
    (e.g. ``"load('company')"``; the caller supplies any import line it
    needs via the returned module's header comment).
    """
    wanted = sorted({violation.invariant for violation in failure.violations})
    lines = [_PREAMBLE]
    lines.append("")
    lines.append(f"def {test_name}():")
    lines.append(f"    # violated: {', '.join(wanted)}")
    for violation in failure.violations[:3]:
        lines.append(f"    #   {violation}")
    lines.append(f"    workspace = Workspace({subject_source})")
    for step in steps:
        lines.append(f"    {_step_source(step)}")
    lines.append(
        "    assert not check_workspace(workspace), "
        '"invariant violations survived shrinking"'
    )
    lines.append("    while workspace.undo_depth:")
    lines.append("        workspace.undo_last()")
    lines.append(
        "    assert schemas_equal(workspace.schema, workspace.reference), "
        '"undoing every step must restore the reference schema"'
    )
    return "\n".join(lines) + "\n"
