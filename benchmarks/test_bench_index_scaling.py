"""Index scaling: memoized graph queries vs the full-scan baseline.

The paper's pipeline (Figure 1) asks the schema graph the same questions
over and over -- subtypes for every wagon wheel, descendants for every
hierarchy root, parts explosions per aggregation root.  This bench
sweeps generated workload schemas at 20/60/200 interfaces and times an
all-types query sweep through the :class:`~repro.model.index.SchemaIndex`
against the preserved ``scan_*`` full-scan reference implementations.

Acceptance floor (ISSUE 1): >= 5x on ``descendants`` and ``parts`` at
200 interfaces.  ``make bench-smoke`` runs the reduced configuration
(``REPRO_BENCH_SMOKE=1``: small sizes, relaxed floor) as a fast
regression tripwire; correctness of invalidation itself is tier-1
(``tests/test_schema_index.py``).
"""

from __future__ import annotations

import os
import time
from typing import Callable

import pytest

from repro.model.index import (
    scan_descendants,
    scan_parts,
    scan_relationship_pairs,
    scan_subtypes,
    scan_wholes,
)
from repro.model.schema import Schema
from repro.workload.generator import WorkloadSpec, generate_schema

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
SIZES = (20, 60) if SMOKE else (20, 60, 200)
#: sizes at which the ISSUE's >= 5x floor is enforced
STRICT_SIZE = 200
REPEATS = 3 if SMOKE else 5


def _schema(size: int) -> Schema:
    # part_of/instance_of chains scale with the schema so the aggregation
    # queries have real work at every size.
    spec = WorkloadSpec(
        types=size,
        seed=42,
        isa_fraction=0.45,
        part_of_chain=max(4, size // 4),
        instance_of_chain=max(3, size // 8),
    )
    return generate_schema(spec)


def _best_of(fn: Callable[[], object], repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _sweep_cases(schema: Schema) -> dict[str, tuple[Callable, Callable]]:
    """query family -> (indexed sweep, full-scan sweep) over all types."""
    names = schema.type_names()
    return {
        "subtypes": (
            lambda: [schema.subtypes(n) for n in names],
            lambda: [scan_subtypes(schema, n) for n in names],
        ),
        "descendants": (
            lambda: [schema.descendants(n) for n in names],
            lambda: [scan_descendants(schema, n) for n in names],
        ),
        "parts": (
            lambda: [schema.parts(n) for n in names],
            lambda: [scan_parts(schema, n) for n in names],
        ),
        "wholes": (
            lambda: [schema.wholes(n) for n in names],
            lambda: [scan_wholes(schema, n) for n in names],
        ),
        "relationship_pairs": (
            lambda: schema.relationship_pairs(),
            lambda: scan_relationship_pairs(schema),
        ),
    }


def _measure(size: int) -> dict[str, tuple[float, float, float]]:
    """family -> (indexed seconds, scan seconds, speedup) at *size*."""
    schema = _schema(size)
    results: dict[str, tuple[float, float, float]] = {}
    for family, (indexed, scanned) in _sweep_cases(schema).items():
        indexed()  # warm the cache: steady-state queries are what recur
        indexed_time = _best_of(indexed)
        scan_time = _best_of(scanned)
        speedup = scan_time / indexed_time if indexed_time else float("inf")
        results[family] = (indexed_time, scan_time, speedup)
    return results


def test_bench_index_scaling(report):
    lines = [
        "schema-graph query scaling: SchemaIndex vs full-scan baseline",
        f"mode: {'smoke' if SMOKE else 'full'}; all-types sweep, "
        f"best of {REPEATS}",
        "",
        f"{'size':>5} {'query':<20} {'indexed':>12} {'full scan':>12} "
        f"{'speedup':>9}",
    ]
    floors_checked = []
    for size in SIZES:
        results = _measure(size)
        for family, (indexed_time, scan_time, speedup) in results.items():
            lines.append(
                f"{size:>5} {family:<20} {indexed_time * 1e3:>10.3f}ms "
                f"{scan_time * 1e3:>10.3f}ms {speedup:>8.1f}x"
            )
            if size >= STRICT_SIZE and family in ("descendants", "parts"):
                floors_checked.append((size, family, speedup))
                assert speedup >= 5.0, (
                    f"{family} at {size} interfaces: only {speedup:.1f}x "
                    "over the full-scan baseline (>= 5x required)"
                )
            elif SMOKE and size >= 60 and family in ("descendants", "parts"):
                # reduced configuration: regressions that erase the win
                # entirely should still trip the smoke run.  The
                # 20-interface point is excluded: queries there run in
                # single-digit microseconds, so the indexed-vs-scan
                # ratio is timer-noise-dominated and flaked around the
                # old floor on an idle machine.
                assert speedup >= 1.5, (
                    f"{family} at {size} interfaces: {speedup:.1f}x; the "
                    "index no longer beats the scan in the smoke sweep"
                )
        lines.append("")
    if floors_checked:
        lines.append(
            "floor: >= 5.0x enforced for "
            + ", ".join(f"{f}@{s}" for s, f, _ in floors_checked)
        )
    report("index_scaling", "\n".join(lines))


def test_bench_index_invalidation_cost(report):
    """Mutation-heavy sweep: invalidation must not erase the win.

    Alternates one mutation with a small query batch -- the worst case
    for a memoized index -- and reports the per-iteration cost against
    the scan baseline doing the same work.
    """
    size = SIZES[-1]
    schema = _schema(size)
    names = schema.type_names()
    probe = names[: max(4, len(names) // 10)]

    def churn_indexed() -> None:
        for i, name in enumerate(probe):
            interface = schema.get(name)
            interface.add_key((f"attr{1 + i % 3}",))
            interface.remove_key((f"attr{1 + i % 3}",))
            for other in probe:
                schema.descendants(other)
                schema.parts(other)

    def churn_scanned() -> None:
        for i, name in enumerate(probe):
            interface = schema.get(name)
            interface.add_key((f"attr{1 + i % 3}",))
            interface.remove_key((f"attr{1 + i % 3}",))
            for other in probe:
                scan_descendants(schema, other)
                scan_parts(schema, other)

    indexed_time = _best_of(churn_indexed)
    scan_time = _best_of(churn_scanned)
    ratio = scan_time / indexed_time if indexed_time else float("inf")
    report(
        "index_invalidation_cost",
        "\n".join(
            [
                "mutation-interleaved sweep (worst case for memoization)",
                f"size {size}: indexed {indexed_time * 1e3:.3f}ms, "
                f"full scan {scan_time * 1e3:.3f}ms, ratio {ratio:.1f}x",
            ]
        ),
    )
    # Even while churning, rebuild-per-generation must stay cheaper than
    # scanning per query.
    assert ratio >= 1.0


@pytest.mark.parametrize("size", SIZES)
def test_bench_index_counters_accumulate(size):
    """The instrumentation itself: counters move as queries run."""
    schema = _schema(size)
    schema.index.reset_stats()
    for name in schema.type_names():
        schema.descendants(name)
    stats = schema.index.stats()
    assert stats["misses"] >= 1
    assert stats["hits"] >= len(schema) - 1
    # The ISA closure is folded incrementally from the spine, so a
    # mutation costs a fold, not a rebuild; the *ordered* subtype family
    # is still stamp-invalidated and rebuilds on the next query.
    schema.subtypes(schema.type_names()[0])
    schema.get(schema.type_names()[0]).add_supertype("NoSuchSupertype")
    schema.descendants(schema.type_names()[-1])
    assert schema.index.stats()["rebuilds"] == 0
    schema.subtypes(schema.type_names()[0])
    assert schema.index.stats()["rebuilds"] >= 1
