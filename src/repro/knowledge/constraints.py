"""Cautionary checks the knowledge component runs before an operation.

Beyond each operation's own hard constraints (``validate``), the
interactive designer warns about legal-but-consequential changes --
the paper's "cautionary statements to the user in the form of feedback"
(Section 5, activity 9).  Each check inspects one proposed operation
against the current workspace schema and returns zero or more
:class:`~repro.knowledge.feedback.Feedback` messages; none of them block
the operation.
"""

from __future__ import annotations

from typing import Callable

from repro.model.schema import Schema
from repro.model.types import CollectionType
from repro.knowledge.feedback import Feedback, caution, info
from repro.ops.attribute_ops import (
    DeleteAttribute,
    ModifyAttribute,
    ModifyAttributeSize,
    ModifyAttributeType,
)
from repro.ops.base import SchemaOperation
from repro.ops.relationship_common import ModifyCardinalityBase
from repro.ops.type_ops import DeleteTypeDefinition
from repro.ops.type_property_ops import DeleteSupertype, ModifySupertype

Check = Callable[[Schema, SchemaOperation], list[Feedback]]


def check_delete_type_with_subtypes(
    schema: Schema, operation: SchemaOperation
) -> list[Feedback]:
    """Deleting a supertype severs inheritance for its subtypes."""
    if not isinstance(operation, DeleteTypeDefinition):
        return []
    if operation.typename not in schema:
        return []
    subtypes = schema.subtypes(operation.typename)
    if not subtypes:
        return []
    return [
        caution(
            "delete-supertype-of", operation.typename,
            f"{operation.typename!r} is the supertype of "
            f"{', '.join(subtypes)}; deleting it removes their inherited "
            "information",
        )
    ]


def check_delete_type_connectivity(
    schema: Schema, operation: SchemaOperation
) -> list[Feedback]:
    """Report how many constructs the delete will cascade through."""
    if not isinstance(operation, DeleteTypeDefinition):
        return []
    if operation.typename not in schema:
        return []
    references = [
        interface.name
        for interface in schema
        if interface.name != operation.typename
        and operation.typename in interface.referenced_type_names()
    ]
    if not references:
        return []
    return [
        info(
            "delete-cascade-extent", operation.typename,
            f"deleting {operation.typename!r} cascades into "
            f"{len(references)} other type(s): {', '.join(sorted(references))}",
        )
    ]


def check_attribute_narrowing(
    schema: Schema, operation: SchemaOperation
) -> list[Feedback]:
    """Shrinking a sized scalar can truncate existing data."""
    if not isinstance(operation, ModifyAttributeSize):
        return []
    if operation.old_size is None or operation.new_size is None:
        return []
    if operation.new_size >= operation.old_size:
        return []
    return [
        caution(
            "attribute-narrowing",
            f"{operation.typename}.{operation.attribute_name}",
            f"size shrinks from {operation.old_size} to "
            f"{operation.new_size}; existing values may be truncated",
        )
    ]


def check_attribute_type_change(
    schema: Schema, operation: SchemaOperation
) -> list[Feedback]:
    """Changing an attribute's domain changes its semantics."""
    if not isinstance(operation, ModifyAttributeType):
        return []
    return [
        caution(
            "attribute-retype",
            f"{operation.typename}.{operation.attribute_name}",
            f"domain changes from {operation.old_type} to "
            f"{operation.new_type}; dependent applications must convert",
        )
    ]


def check_downward_move_narrows_visibility(
    schema: Schema, operation: SchemaOperation
) -> list[Feedback]:
    """Moving an attribute down the hierarchy hides it from siblings."""
    if not isinstance(operation, ModifyAttribute):
        return []
    if (
        operation.typename not in schema
        or operation.new_typename not in schema.descendants(operation.typename)
    ):
        return []
    losers = sorted(
        ({operation.typename} | schema.descendants(operation.typename))
        - ({operation.new_typename} | schema.descendants(operation.new_typename))
    )
    return [
        caution(
            "downward-move",
            f"{operation.typename}.{operation.attribute_name}",
            f"moving down to {operation.new_typename!r} hides the "
            f"attribute from {', '.join(losers)}",
        )
    ]


def check_cardinality_narrowing(
    schema: Schema, operation: SchemaOperation
) -> list[Feedback]:
    """A to-many end becoming to-one can lose relationship instances."""
    if not isinstance(operation, ModifyCardinalityBase):
        return []
    was_many = isinstance(operation.old_target, CollectionType)
    stays_many = isinstance(operation.new_target, CollectionType)
    if not was_many or stays_many:
        return []
    return [
        caution(
            "cardinality-narrowing",
            f"{operation.typename}.{operation.traversal_path}",
            "the end becomes to-one; existing many-valued links would "
            "need to be reduced to a single target",
        )
    ]


def check_delete_inherited_dependencies(
    schema: Schema, operation: SchemaOperation
) -> list[Feedback]:
    """Deleting an attribute also affects every subtype inheriting it."""
    if not isinstance(operation, DeleteAttribute):
        return []
    if operation.typename not in schema:
        return []
    inheritors = [
        name
        for name in sorted(schema.descendants(operation.typename))
        if operation.attribute_name not in schema.get(name).attributes
    ]
    if not inheritors:
        return []
    return [
        info(
            "delete-inherited",
            f"{operation.typename}.{operation.attribute_name}",
            f"subtypes {', '.join(inheritors)} inherit this attribute and "
            "lose it too",
        )
    ]


def check_isa_rewiring(
    schema: Schema, operation: SchemaOperation
) -> list[Feedback]:
    """Removing ISA links changes what the subtree inherits."""
    messages: list[Feedback] = []
    removed: list[tuple[str, str]] = []
    if isinstance(operation, DeleteSupertype):
        removed.append((operation.typename, operation.supertype))
    if isinstance(operation, ModifySupertype):
        removed.extend(
            (operation.typename, supertype)
            for supertype in operation.old_supertypes
            if supertype not in operation.new_supertypes
        )
    for typename, supertype in removed:
        if typename not in schema or supertype not in schema:
            continue
        lost = set(schema.get(supertype).attributes) | set(
            schema.inherited_attributes(supertype)
        )
        lost -= set(schema.get(typename).attributes)
        if lost:
            messages.append(
                caution(
                    "isa-rewiring", f"{typename} ISA {supertype}",
                    f"{typename!r} stops inheriting: "
                    f"{', '.join(sorted(lost))}",
                )
            )
    return messages


#: Every cautionary check, in reporting order.
CAUTION_CHECKS: tuple[Check, ...] = (
    check_delete_type_with_subtypes,
    check_delete_type_connectivity,
    check_attribute_narrowing,
    check_attribute_type_change,
    check_downward_move_narrows_visibility,
    check_cardinality_narrowing,
    check_delete_inherited_dependencies,
    check_isa_rewiring,
)


def cautions_for(
    schema: Schema, operation: SchemaOperation
) -> list[Feedback]:
    """Run every cautionary check for one proposed operation."""
    messages: list[Feedback] = []
    for check in CAUTION_CHECKS:
        messages.extend(check(schema, operation))
    return messages
