"""``python -m repro.lint``: run every contract pass in one invocation.

Exit status: 0 when every finding is baselined (or none exist), 1 when
any non-baselined finding (or malformed baseline entry) remains, 2 on
usage errors.  ``--json`` prints the machine-readable report CI
archives; ``--output`` writes it to a file as well.  ``--root`` points
the AST load at an alternate tree containing a ``repro/`` package --
fixture tests use it to prove seeded violations fail the run.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint.findings import Baseline, render_json, render_text
from repro.lint.loader import DEFAULT_SRC, Codebase
from repro.lint.registry import LintContext, all_passes, run_passes

DEFAULT_BASELINE = DEFAULT_SRC.parent / "tools" / "lint_baseline.txt"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="run the repro contract-lint passes",
    )
    parser.add_argument(
        "--json", action="store_true", help="print the JSON report"
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="also write the JSON report to this file",
    )
    parser.add_argument(
        "--root", type=Path, default=None,
        help="directory containing the 'repro' package to analyze "
        "(default: the installed source tree)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help="baseline file of grandfathered findings "
        "(default: tools/lint_baseline.txt)",
    )
    parser.add_argument(
        "--pass", dest="passes", action="append", default=None,
        metavar="ID", help="run only this pass (repeatable)",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list registered passes and their contracts, then exit",
    )
    args = parser.parse_args(argv)

    if args.list:
        for lint_pass in all_passes():
            rules = ", ".join(lint_pass.rules)
            print(f"{lint_pass.pass_id}  [{rules}]")
            print(f"    {lint_pass.contract}")
        return 0

    src_root = args.root if args.root is not None else DEFAULT_SRC
    try:
        codebase = Codebase.load(src_root)
    except (FileNotFoundError, SyntaxError) as exc:
        print(f"repro.lint: cannot load codebase: {exc}", file=sys.stderr)
        return 2
    context = LintContext(codebase=codebase, src_root=src_root)
    try:
        findings, reports = run_passes(context, only=args.passes)
    except KeyError as exc:
        print(f"repro.lint: {exc.args[0]}", file=sys.stderr)
        return 2

    baseline = Baseline.load(args.baseline)
    new, baselined, stale = baseline.split(findings)
    json_report = render_json(new, baselined, stale, reports, baseline.errors)
    if args.output is not None:
        args.output.write_text(json_report + "\n", encoding="utf-8")
    if args.json:
        print(json_report)
    else:
        print(render_text(new, baselined, stale, [], baseline.errors))
    failing = [f for f in new if f.severity == "error"]
    return 1 if failing or baseline.errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
