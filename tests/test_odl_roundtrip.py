"""Printer -> parser -> printer round trips over whole schemas.

Section 3.1 treats printed extended ODL as the exchange form of a
schema: whatever the repository holds must print to text that parses
back to the identical schema, and re-printing the parse must reproduce
the text byte for byte (idempotence).  The catalog plus a sweep of
generated workloads gives the coverage; the same property runs inside
the fuzzer as the ``odl-round-trip`` invariant, mid-modification.
"""

import pytest

from repro.catalog import SCHEMA_BUILDERS, load
from repro.model.fingerprint import schemas_equal
from repro.odl.parser import parse_schema
from repro.odl.printer import print_schema
from repro.repository.workspace import Workspace
from repro.workload.generator import (
    WorkloadSpec,
    generate_operations,
    generate_schema,
)


def assert_round_trips(schema):
    text = print_schema(schema)
    parsed = parse_schema(text, name=schema.name)
    assert schemas_equal(schema, parsed), f"{schema.name} changed in transit"
    assert print_schema(parsed) == text, (
        f"{schema.name}: printing the re-parse is not idempotent"
    )


@pytest.mark.parametrize("name", sorted(SCHEMA_BUILDERS))
def test_catalog_round_trips(name):
    assert_round_trips(load(name))


@pytest.mark.parametrize("seed", range(8))
def test_generated_schemas_round_trip(seed):
    spec = WorkloadSpec(
        types=10 + seed,
        attributes_per_type=3,
        association_density=1.0,
        seed=seed,
    )
    assert_round_trips(generate_schema(spec))


@pytest.mark.parametrize("seed", range(4))
def test_customized_schemas_round_trip(seed):
    """Round trips must survive arbitrary operation streams."""
    reference = generate_schema(WorkloadSpec(types=10, seed=seed))
    workspace = Workspace(reference)
    for operation in generate_operations(reference, count=30, seed=seed):
        workspace.apply(operation)
    assert_round_trips(workspace.schema)


def test_empty_schema_round_trips():
    from repro.model.schema import Schema

    assert_round_trips(Schema("empty"))
