"""The catalog of example shrink wrap schemas from the paper.

==================  ==========================================
schema              paper artifact
==================  ==========================================
``university``      Figures 3, 4, 7 (course offerings, students)
``lumber_yard``     Figure 5 (house parts explosion)
``emsl_software``   Figure 6 (software version instance-of chain)
``company``         Figure 8 (modify-target-type example)
``acedb``           Figure 9 / Section 4 (nematode genome database)
==================  ==========================================

AAtDB (Figure 11) and SacchDB (Figure 10) are *derived* schemas: they
are produced by applying the recorded customization scripts to the ACEDB
shrink wrap schema, demonstrating the Section 4 case study.
"""

from typing import Callable

from repro.catalog.business import BUSINESS_ODL, business_schema
from repro.catalog.company import (
    COMPANY_ODL,
    FIGURE8_AFTER,
    FIGURE8_BEFORE,
    FIGURE8_OPERATION,
    company_schema,
)
from repro.catalog.genome import (
    AATDB_SCRIPT,
    ACEDB_ODL,
    SACCHDB_SCRIPT,
    aatdb_repository,
    aatdb_schema,
    acedb_schema,
    common_classes,
    sacchdb_repository,
    sacchdb_schema,
)
from repro.catalog.house import HOUSE_ODL, house_schema
from repro.catalog.software import SOFTWARE_ODL, software_schema
from repro.catalog.university import (
    CORRESPONDENCE_SIMPLIFICATION_SCRIPT,
    FIGURE7_ELABORATION_SCRIPT,
    UNIVERSITY_ODL,
    university_schema,
)
from repro.model.errors import SchemaError
from repro.model.schema import Schema

#: Loadable shrink wrap schemas by name.
SCHEMA_BUILDERS: dict[str, Callable[[], Schema]] = {
    "university": university_schema,
    "lumber_yard": house_schema,
    "emsl_software": software_schema,
    "company": company_schema,
    "acedb": acedb_schema,
    "business_objects": business_schema,
    "aatdb": aatdb_schema,
    "sacchdb": sacchdb_schema,
}


def load(name: str) -> Schema:
    """Build one catalog schema by name."""
    try:
        builder = SCHEMA_BUILDERS[name]
    except KeyError:
        known = ", ".join(sorted(SCHEMA_BUILDERS))
        raise SchemaError(
            f"unknown catalog schema {name!r} (known: {known})"
        ) from None
    return builder()


__all__ = [
    "AATDB_SCRIPT",
    "BUSINESS_ODL",
    "ACEDB_ODL",
    "COMPANY_ODL",
    "CORRESPONDENCE_SIMPLIFICATION_SCRIPT",
    "FIGURE7_ELABORATION_SCRIPT",
    "FIGURE8_AFTER",
    "FIGURE8_BEFORE",
    "FIGURE8_OPERATION",
    "HOUSE_ODL",
    "SACCHDB_SCRIPT",
    "SCHEMA_BUILDERS",
    "SOFTWARE_ODL",
    "UNIVERSITY_ODL",
    "aatdb_repository",
    "aatdb_schema",
    "acedb_schema",
    "business_schema",
    "common_classes",
    "company_schema",
    "house_schema",
    "load",
    "sacchdb_repository",
    "sacchdb_schema",
    "software_schema",
    "university_schema",
]
