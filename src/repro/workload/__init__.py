"""Synthetic schema and operation workloads for the benchmarks."""

from repro.workload.generator import (
    WorkloadSpec,
    generate_operations,
    generate_schema,
)

__all__ = ["WorkloadSpec", "generate_operations", "generate_schema"]
