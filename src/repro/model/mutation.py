"""The mutation spine: one structured change-event stream per schema.

Three earlier layers each bolted a private invalidation channel onto the
model: the :class:`~repro.model.index.SchemaIndex` generation counter,
the memoized fingerprints, and the validation cache's aspect-tagged
dirty journal, every one fed by ad-hoc hooks a new mutator had to
remember to call.  This module reifies mutations instead — the
description-driven move of Le Goff & Kovacs — so the model layer has a
single source of change truth:

* every mutator on :class:`~repro.model.interface.InterfaceDef` and
  :class:`~repro.model.schema.Schema` emits one structured
  :class:`MutationRecord` (kind, interface, aspects, payload, monotonic
  seq) onto the schema's :class:`MutationLog`;
* cache layers are *subscribers* of that stream — the index derives its
  generation from :attr:`MutationLog.seq`, the validation cache's
  :class:`DirtyJournal` folds records into its dirty set, and
  fingerprint memos stamp against the same seq (:meth:`MutationLog.
  memo`);
* records are **replayable**: :meth:`MutationLog.replay` rebuilds the
  schema from an empty one, which the ``spine-replay`` invariant checks
  against the live fingerprint after fuzz steps, and which gives
  snapshots (a seq watermark) and record-level diffs
  (:func:`repro.analysis.diff.schema_diff`) for free.

Adding a cache layer no longer touches any mutator: subscribe to the
log (or stamp against ``seq``) and derive your state from the records —
see DESIGN.md §5e for the subscriber contract.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from repro.model.relationships import RelationshipKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.model.schema import Schema


class Aspect(enum.StrEnum):
    """One facet of an interface definition a mutation can change.

    The single vocabulary shared by mutator emissions, the validation
    rules' read scopes (:data:`repro.model.validation.RULE_SCOPES`) and
    the operations' declared write scopes
    (:meth:`repro.ops.base.SchemaOperation.validation_scope`).  Being an
    enum, a typo'd aspect is an ``AttributeError`` at import time, not a
    silently stale cache; being a ``StrEnum``, members compare and hash
    like their legacy string values.
    """

    ISA = "isa"  # the supertype list
    ATTRS = "attrs"  # attribute definitions
    KEYS = "keys"  # key lists
    EXTENT = "extent"  # the extent name (no validation rule reads it)
    OPS = "ops"  # operation signatures
    REL_ASSOCIATION = "rel-association"  # association ends
    REL_PART_OF = "rel-part-of"  # part-of ends
    REL_INSTANCE_OF = "rel-instance-of"  # instance-of ends
    #: Operation-level pseudo-aspect: whole interfaces added/removed.
    MEMBERSHIP = "membership"


#: Every interface-level aspect; the conservative scope for operations
#: without finer metadata (``membership`` is operation-level only).
ALL_ASPECTS: frozenset[Aspect] = frozenset(Aspect) - {Aspect.MEMBERSHIP}

_KIND_ASPECTS = {
    RelationshipKind.ASSOCIATION: Aspect.REL_ASSOCIATION,
    RelationshipKind.PART_OF: Aspect.REL_PART_OF,
    RelationshipKind.INSTANCE_OF: Aspect.REL_INSTANCE_OF,
}


def aspect_for_kind(kind: RelationshipKind) -> Aspect:
    """The aspect covering relationship ends of *kind*."""
    return _KIND_ASPECTS[kind]


#: Empty aspect set, shared so bookkeeping records allocate nothing.
NO_ASPECTS: frozenset[Aspect] = frozenset()


@dataclass(frozen=True, slots=True)
class MutationRecord:
    """One reified schema mutation.

    ``kind`` names the mutator that ran (``"add_attribute"``,
    ``"remove_interface"``, ...), ``interface`` the owning type for
    interface-level mutations (``None`` for whole-schema bookkeeping),
    ``aspects`` the facets it changed, ``payload`` the arguments needed
    to replay it, and ``seq`` its position on the spine.
    """

    seq: int
    kind: str
    interface: str | None
    aspects: frozenset[Aspect]
    payload: dict

    def names(self) -> Iterator[str]:
        """Every interface name this record may have changed.

        ISA mutations also name the supertypes involved: adding or
        removing a parent changes that parent's derived state (its
        subtree), so O(changed) verification sweeps must treat it as
        touched.  ``remove_interface`` carries no payload; the parents
        it detached from are only covered by the final full sweep.
        """
        if self.interface is not None:
            yield self.interface
        kind = self.kind
        if kind == "scope":
            yield from self.payload.get("names", ())
        elif kind in ("add_supertype", "remove_supertype"):
            supertype = self.payload.get("supertype")
            if supertype is not None:
                yield supertype
        elif kind == "set_supertypes":
            yield from self.payload.get("supertypes", ())
        elif kind == "add_interface":
            definition = self.payload.get("interface")
            if definition is not None:
                yield from definition.supertypes

    def __str__(self) -> str:
        where = f" {self.interface}" if self.interface else ""
        return f"#{self.seq} {self.kind}{where}"


Subscriber = Callable[[MutationRecord], None]


class MutationLog:
    """The per-schema spine of :class:`MutationRecord` events.

    ``seq`` is the monotonic mutation counter the index stamps its
    caches with (it *is* ``Schema.generation``); ``subscribe`` registers
    a callback run synchronously on every append.  ``origin`` /
    ``origin_seq`` / ``base_seq`` record fork lineage so record-level
    diffs can find the suffix two schemas diverged by.
    """

    __slots__ = (
        "_seq",
        "_records",
        "_subscribers",
        "_memos",
        "_cow_borrows",
        "lossy",
        "origin",
        "origin_seq",
        "base_seq",
    )

    def __init__(self) -> None:
        self._seq = 0
        self._records: list[MutationRecord] = []
        self._subscribers: list[Subscriber] = []
        self._memos: dict[str, tuple[int, object]] = {}
        #: Live CoW forks borrowing interfaces owned by this spine's
        #: schema (``interface._SchemaShare`` entries, held weakly).  The
        #: per-mutator barrier settles them before any interface this
        #: schema owns changes (see ``InterfaceDef._cow_barrier``).
        self._cow_borrows: list = []
        #: True once a non-replayable record (out-of-band ``touch``) was
        #: emitted; replay and record-level diff then refuse the log.
        self.lossy = False
        #: The parent spine this log was forked from, if any.
        self.origin: "MutationLog | None" = None
        #: Seq on the *parent* spine at fork time.
        self.origin_seq = 0
        #: Own seq right after fork population; records above it are the
        #: fork's divergence suffix.  A copy-on-write fork emits *no*
        #: population records, so its ``base_seq`` stays 0 while
        #: ``origin`` is set -- that combination marks a log whose
        #: initial state is the origin prefix up to ``origin_seq``
        #: rather than the empty schema.
        self.base_seq = 0

    # ------------------------------------------------------------------
    # The stream
    # ------------------------------------------------------------------

    @property
    def seq(self) -> int:
        """Monotonic mutation counter (the schema's generation)."""
        return self._seq

    @property
    def records(self) -> tuple[MutationRecord, ...]:
        """Every record emitted so far, in seq order."""
        return tuple(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def emit(
        self,
        kind: str,
        *,
        interface: str | None = None,
        aspects: frozenset[Aspect] = NO_ASPECTS,
        payload: dict | None = None,
    ) -> MutationRecord:
        """Append one record and notify every subscriber."""
        self._seq += 1
        record = MutationRecord(
            seq=self._seq,
            kind=kind,
            interface=interface,
            aspects=aspects,
            payload=payload if payload is not None else {},
        )
        self._records.append(record)
        if kind not in _REPLAYERS:
            self.lossy = True
        for subscriber in self._subscribers:
            subscriber(record)
        return record

    def subscribe(self, subscriber: Subscriber) -> None:
        """Register a callback invoked on every emitted record."""
        self._subscribers.append(subscriber)

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)

    def records_since(self, seq: int) -> list[MutationRecord]:
        """Records with ``seq`` strictly greater than the watermark.

        Seqs are dense (every emit appends exactly one record), so the
        suffix is a slice, not a scan.
        """
        if seq >= self._seq:
            return []
        return self._records[seq:]

    # ------------------------------------------------------------------
    # Derived-value memoization (the fingerprint subscriber)
    # ------------------------------------------------------------------

    def memo(self, key: str, builder: Callable[[], object]) -> object:
        """Seq-stamped memoization of a pure function of schema content.

        The cached value is dropped as soon as any mutation lands on the
        spine; :func:`repro.model.fingerprint.memoized_schema_fingerprint`
        derives its invalidation from this instead of a private counter.
        """
        cached = self._memos.get(key)
        if cached is not None and cached[0] == self._seq:
            return cached[1]
        value = builder()
        self._memos[key] = (self._seq, value)
        return value

    # ------------------------------------------------------------------
    # Fork lineage
    # ------------------------------------------------------------------

    def link_origin(self, origin: "MutationLog") -> None:
        """Mark this log as forked off *origin* at its current seq.

        Called by :meth:`Schema.fork` right after populating the copy;
        every record already on this log is fork population, everything
        after is divergence.
        """
        self.origin = origin
        self.origin_seq = origin.seq
        self.base_seq = self._seq

    def lineage(self) -> list[tuple["MutationLog", int]]:
        """(log, exit seq) pairs from this log up the origin chain.

        The exit seq of the head entry is the current seq; for ancestors
        it is the seq at which the chain forked off them.
        """
        chain: list[tuple[MutationLog, int]] = [(self, self._seq)]
        log, seq = self.origin, self.origin_seq
        while log is not None:
            chain.append((log, seq))
            log, seq = log.origin, log.origin_seq
        return chain

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------

    @property
    def replayable(self) -> bool:
        """Whether :meth:`replay` can reproduce the schema exactly.

        A copy-on-write fork (``base_seq == 0`` with an origin) carries
        no population records; its replay starts from the origin's
        prefix, so the whole chain of record-free forks must be
        loss-free too.  An eagerly populated log only depends on its own
        records.
        """
        log: "MutationLog | None" = self
        while log is not None:
            if log.lossy:
                return False
            if log.origin is None or log.base_seq != 0:
                return True
            log = log.origin
        return True

    def replay(self, name: str = "replay") -> "Schema":
        """Rebuild the schema this log describes, from empty.

        Replays every record through the ordinary mutators -- for a
        copy-on-write fork the origin chain's prefixes come first, since
        the fork's own log starts at the shared state, not at empty.
        The ``spine-replay`` invariant asserts the result's fingerprint
        equals the live schema's.  Raises :class:`ValueError` on a lossy
        log (an out-of-band ``Schema.touch()`` was recorded).
        """
        if not self.replayable:
            raise ValueError("cannot replay a lossy mutation log")
        from repro.model.schema import Schema

        target = Schema(name)
        self._replay_prefix(target, self._seq)
        return target

    def _replay_prefix(self, target: "Schema", upto: int) -> None:
        """Replay this log's records with seq <= *upto* onto *target*.

        Record-free forks first replay the origin prefix they branched
        from; seqs are dense, so the prefix is a slice.
        """
        if self.origin is not None and self.base_seq == 0:
            self.origin._replay_prefix(target, self.origin_seq)
        for record in self._records[:upto]:
            _REPLAYERS[record.kind](target, record)


# ----------------------------------------------------------------------
# Replayers: kind -> how to re-apply the record on a fresh schema
# ----------------------------------------------------------------------


def _replay_add_interface(schema: "Schema", record: MutationRecord) -> None:
    schema.add_interface(record.payload["interface"].copy())


def _replay_remove_interface(schema: "Schema", record: MutationRecord) -> None:
    schema.remove_interface(record.interface)


def _replay_reorder_interfaces(schema: "Schema", record: MutationRecord) -> None:
    schema.reorder_interfaces(list(record.payload["order"]))


def _replay_noop(schema: "Schema", record: MutationRecord) -> None:
    """Bookkeeping records (declared op scopes) change no content."""


def _interface_replayer(method: str, *arg_keys: str):
    def replay(schema: "Schema", record: MutationRecord) -> None:
        target = schema.get(record.interface)
        getattr(target, method)(*(record.payload[key] for key in arg_keys))

    return replay


_REPLAYERS: dict[str, Callable[["Schema", MutationRecord], None]] = {
    "add_interface": _replay_add_interface,
    "remove_interface": _replay_remove_interface,
    "reorder_interfaces": _replay_reorder_interfaces,
    "scope": _replay_noop,
    "add_supertype": _interface_replayer("add_supertype", "supertype", "position"),
    "remove_supertype": _interface_replayer("remove_supertype", "supertype"),
    "set_supertypes": _interface_replayer("set_supertypes", "supertypes"),
    "set_extent": _interface_replayer("set_extent", "extent"),
    "add_key": _interface_replayer("add_key", "key"),
    "remove_key": _interface_replayer("remove_key", "key"),
    "insert_key": _interface_replayer("insert_key", "key", "position"),
    "replace_key_at": _interface_replayer("replace_key_at", "position", "key"),
    "add_attribute": _interface_replayer("add_attribute", "attribute"),
    "remove_attribute": _interface_replayer("remove_attribute", "name"),
    "replace_attribute": _interface_replayer("replace_attribute", "attribute"),
    "reorder_attributes": _interface_replayer("reorder_attributes", "order"),
    "add_relationship": _interface_replayer("add_relationship", "end"),
    "remove_relationship": _interface_replayer("remove_relationship", "name"),
    "replace_relationship": _interface_replayer("replace_relationship", "end"),
    "add_operation": _interface_replayer("add_operation", "operation"),
    "remove_operation": _interface_replayer("remove_operation", "name"),
    "replace_operation": _interface_replayer("replace_operation", "operation"),
    "reorder_operations": _interface_replayer("reorder_operations", "order"),
}


# ----------------------------------------------------------------------
# The dirty journal: the validation cache's subscriber state
# ----------------------------------------------------------------------


class DirtyJournal:
    """What changed in a schema since the validation cache last looked.

    Pure derived bookkeeping over the mutation stream: interface names
    changed (with the aspects that moved), names added/removed, whether
    declaration order moved, and whether an out-of-band
    ``Schema.touch()`` forced a full invalidation.  The journal is a
    :class:`MutationLog` subscriber — :meth:`observe` folds each record
    in — so every note accompanies a seq bump and a schema whose
    generation matches the cache's stamp always has an irrelevant
    (possibly non-empty) journal.
    """

    __slots__ = ("touched", "added", "removed", "order_changed", "full")

    def __init__(self) -> None:
        self.touched: dict[str, set[Aspect]] = {}
        self.added: set[str] = set()
        self.removed: set[str] = set()
        self.order_changed = False
        self.full = False

    # -- subscriber entry point ----------------------------------------

    def observe(self, record: MutationRecord) -> None:
        """Fold one mutation record into the dirty set."""
        kind = record.kind
        if kind == "add_interface":
            self.added.add(record.interface)
        elif kind == "remove_interface":
            self.removed.add(record.interface)
        elif kind == "reorder_interfaces":
            self.order_changed = True
        elif kind == "touch":
            self.full = True
        elif kind == "scope":
            payload = record.payload
            for name in payload["added"]:
                self.added.add(name)
            for name in payload["removed"]:
                self.removed.add(name)
            aspects = payload["aspects"]
            if aspects:
                for name in payload["names"]:
                    self.touched.setdefault(name, set()).update(aspects)
        elif record.interface is not None:
            self.touched.setdefault(record.interface, set()).update(
                record.aspects
            )

    def clear(self) -> None:
        self.touched.clear()
        self.added.clear()
        self.removed.clear()
        self.order_changed = False
        self.full = False


# ----------------------------------------------------------------------
# The aspect clock: sharded generation counters for stamped caches
# ----------------------------------------------------------------------

#: Pseudo-aspect tracked by :class:`AspectClock` for declaration-order
#: moves (``reorder_interfaces`` records carry an empty aspect set).
ORDER_CLOCK = "order"


def replayable_kind(kind: str) -> bool:
    """Whether records of *kind* re-apply through a known mutator.

    Spine subscribers that maintain incremental state use this to tell
    structured mutator records apart from lossy out-of-band ones
    (``touch`` or any future unregistered kind), which force a rebuild.
    """
    return kind in _REPLAYERS


class AspectClock:
    """Per-aspect monotonic generation counters over the spine.

    A whole-log ``seq`` stamp invalidates every cache on every mutation;
    at 10k types that makes each plan step pay an O(N) index rebuild.
    The clock shards the generation by :class:`Aspect` (plus membership
    and declaration order) so a cache family stamps only the counters
    whose records can change its value: an attribute edit then leaves
    the subtype map's stamp untouched.

    A counter for an aspect is bumped exactly when a record carrying
    that aspect lands on the spine, so "my stamp is unchanged" implies
    "no record since my build could have changed my inputs" — rebuild
    semantics stay byte-for-byte identical to the scan reference.
    Lossy records (``touch`` or any unknown kind) bump every counter.
    """

    __slots__ = ("_clocks",)

    def __init__(self) -> None:
        self._clocks: dict[object, int] = {}

    def observe(self, record: MutationRecord) -> None:
        """Fold one mutation record into the sharded counters."""
        clocks = self._clocks
        kind = record.kind
        for aspect in record.aspects:
            clocks[aspect] = clocks.get(aspect, 0) + 1
        if kind == "reorder_interfaces":
            clocks[ORDER_CLOCK] = clocks.get(ORDER_CLOCK, 0) + 1
        elif kind not in _REPLAYERS:
            # Out-of-band mutation: nothing can be trusted.
            for aspect in Aspect:
                clocks[aspect] = clocks.get(aspect, 0) + 1
            clocks[ORDER_CLOCK] = clocks.get(ORDER_CLOCK, 0) + 1

    def stamp(self, deps: tuple[object, ...]) -> tuple[int, ...]:
        """The current counter values for *deps* (a cache's stamp)."""
        clocks = self._clocks
        return tuple(clocks.get(dep, 0) for dep in deps)


# ----------------------------------------------------------------------
# Record-level lineage diffing support
# ----------------------------------------------------------------------


def touched_names_between(a: "Schema", b: "Schema") -> set[str] | None:
    """Interface names that may differ between two lineage-related schemas.

    Walks both spines' origin chains to the closest common log and
    collects every name the divergence suffixes mention.  Returns
    ``None`` when the schemas share no spine lineage or any relevant
    segment is lossy — callers must then fall back to a structural walk
    (:func:`repro.analysis.diff.diff_schemas`).
    """
    chain_a = {id(log): (log, seq) for log, seq in a.log.lineage()}
    common: tuple[MutationLog, int, int] | None = None
    below_b: list[tuple[MutationLog, int]] = []
    for log, seq in b.log.lineage():
        entry = chain_a.get(id(log))
        if entry is not None:
            common = (log, entry[1], seq)
            break
        below_b.append((log, seq))
    if common is None:
        return None
    common_log, exit_a, exit_b = common
    below_a: list[tuple[MutationLog, int]] = []
    for log, seq in a.log.lineage():
        if log is common_log:
            break
        below_a.append((log, seq))

    names: set[str] = set()

    def collect(segments: Iterable[tuple[MutationLog, int, int]]) -> bool:
        for log, lo, hi in segments:
            for record in log.records_since(lo):
                if record.seq > hi:
                    break
                if record.kind == "touch":
                    return False
                names.update(record.names())
        return True

    segments = [(log, log.base_seq, seq) for log, seq in below_a]
    segments += [(log, log.base_seq, seq) for log, seq in below_b]
    lo, hi = sorted((exit_a, exit_b))
    segments.append((common_log, lo, hi))
    if not collect(segments):
        return None
    return names
