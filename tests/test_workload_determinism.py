"""Determinism tripwires for the workload generator.

The verification campaign (``python -m repro.verify``), the benchmarks,
and every shrunk reproducer all assume the generator is a pure function
of its seed: same seed, bit-identical schema and operation stream;
different seed, different stream.  These tests fail loudly if anyone
introduces hidden global state (or an unseeded RNG) into the generator.
"""

from repro.catalog import load
from repro.model.fingerprint import schema_fingerprint
from repro.workload.generator import (
    WorkloadSpec,
    generate_operations,
    generate_schema,
)


def _op_texts(schema, count, seed):
    return [op.to_text() for op in generate_operations(schema, count, seed)]


class TestSchemaDeterminism:
    def test_same_seed_bit_identical(self):
        spec = WorkloadSpec(types=18, seed=9)
        assert schema_fingerprint(generate_schema(spec)) == schema_fingerprint(
            generate_schema(spec)
        )

    def test_repeated_calls_do_not_drift(self):
        # a generator leaking state across calls would differ on the
        # third invocation even with equal seeds
        spec = WorkloadSpec(types=12, seed=4)
        prints = {schema_fingerprint(generate_schema(spec)) for _ in range(3)}
        assert len(prints) == 1

    def test_seeds_differ(self):
        first = generate_schema(WorkloadSpec(types=18, seed=9))
        second = generate_schema(WorkloadSpec(types=18, seed=10))
        assert schema_fingerprint(first) != schema_fingerprint(second)


class TestOperationStreamDeterminism:
    def test_same_seed_same_stream(self):
        schema = load("company")
        assert _op_texts(schema, 40, 5) == _op_texts(schema, 40, 5)

    def test_seeds_diverge(self):
        schema = load("company")
        assert _op_texts(schema, 40, 5) != _op_texts(schema, 40, 6)

    def test_stream_against_generated_schema(self):
        spec = WorkloadSpec(types=12, seed=2)
        first = _op_texts(generate_schema(spec), 40, 3)
        second = _op_texts(generate_schema(spec), 40, 3)
        assert first == second


class TestStreamCoverage:
    """The extended generator must exercise the whole Appendix A
    language, not only the attribute/relationship core."""

    def _op_names(self):
        names: set[str] = set()
        for seed in range(8):
            schema = load("company")
            for op in generate_operations(schema, 60, seed):
                names.add(op.op_name)
        return names

    def test_part_of_family_generated(self):
        names = self._op_names()
        assert names & {"add_part_of_relationship", "delete_part_of_relationship"}

    def test_instance_of_family_generated(self):
        names = self._op_names()
        assert names & {
            "add_instance_of_relationship", "delete_instance_of_relationship"
        }

    def test_type_property_family_generated(self):
        names = self._op_names()
        assert names & {
            "add_supertype", "delete_supertype",
            "add_extent_name", "modify_extent_name", "delete_extent_name",
            "add_key_list", "delete_key_list",
        }

    def test_composites_contribute_plans(self):
        # Composite expansions surface as add_type_definition +
        # add_supertype bursts; the marker below is the supertype name
        # shape the composite makers use.
        found = False
        for seed in range(12):
            for op in generate_operations(load("company"), 60, seed):
                if "GenSuper" in op.to_text() or "GenSub" in op.to_text():
                    found = True
                    break
            if found:
                break
        assert found, "no composite expansion observed across 12 seeds"
