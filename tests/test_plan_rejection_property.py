"""Property test: every plan-application path rejects plans identically.

PR 7 satellite.  For randomly generated *rejected* plans, the batched
``apply_plan``, the fused ``apply_plan_compiled``, and naive per-op
application must agree:

* both batched paths raise :class:`PlanPreflightError` with the same
  diagnostics (same indices, codes, and messages);
* a rejected plan leaves the schema fingerprint, the op log, and the
  redo stack exactly as they were (atomicity);
* every pre-flight diagnostic reproduces as a real dynamic failure when
  the plan runs per-op with skip-on-failure semantics.

Plans are derived from the deterministic workload generator with a
hypothesis-chosen seed, then broken two ways: dropping one op (later
ops lose the names it created) and injecting an op against a type that
does not exist.  Plans the analyzer still considers clean are discarded
(`hypothesis` ``assume``) -- the property quantifies over rejected ones.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, assume, given, settings

import pytest

from repro.analysis.plan import PlanPreflightError, analyze_plan
from repro.model.errors import SchemaError
from repro.model.fingerprint import schema_fingerprint
from repro.ops.base import OperationError
from repro.ops.language import parse_operation
from repro.repository.workspace import Workspace
from repro.workload.generator import (
    WorkloadSpec,
    generate_operations,
    generate_schema,
)

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _rejected_plan(seed: int, style: int):
    """A (schema, plan) pair whose plan draws pre-flight diagnostics."""
    schema = generate_schema(WorkloadSpec(types=10 + seed % 6, seed=seed))
    try:
        plan = generate_operations(schema, 5, seed=seed)
    except RuntimeError:
        return schema, []
    if style % 2 == 0 and len(plan) >= 2:
        del plan[seed % len(plan)]  # orphan later ops' name dependencies
    else:
        plan.insert(
            seed % (len(plan) + 1),
            parse_operation(f"add_attribute(Ghost{seed:04d}, long, x)"),
        )
    return schema, plan


def _diagnostic_tuples(error: PlanPreflightError):
    return [
        (diagnostic.index, diagnostic.code, diagnostic.message)
        for diagnostic in error.diagnostics
    ]


@given(seed=st.integers(0, 5000), style=st.integers(0, 3))
@_SETTINGS
def test_batched_paths_reject_identically_and_atomically(seed, style):
    schema, plan = _rejected_plan(seed, style)
    assume(plan)
    assume(analyze_plan(plan, schema, normalize=False).diagnostics)

    batched = Workspace(schema, "batched", validate_each_step=False)
    compiled = Workspace(schema, "compiled", validate_each_step=False)
    before = schema_fingerprint(schema)

    with pytest.raises(PlanPreflightError) as batched_error:
        batched.apply_plan(plan, normalize=False)
    with pytest.raises(PlanPreflightError) as compiled_error:
        compiled.apply_plan_compiled(plan, normalize=False)

    assert _diagnostic_tuples(batched_error.value) == _diagnostic_tuples(
        compiled_error.value
    )
    for workspace in (batched, compiled):
        assert schema_fingerprint(workspace.schema) == before
        assert workspace.log == []
        assert workspace.redo_depth == 0


@given(seed=st.integers(0, 5000), style=st.integers(0, 3))
@_SETTINGS
def test_diagnostics_reproduce_as_dynamic_failures(seed, style):
    schema, plan = _rejected_plan(seed, style)
    assume(plan)
    verdict = analyze_plan(plan, schema, normalize=False)
    assume(verdict.diagnostics)

    replay = Workspace(schema, "replay", validate_each_step=False)
    failed: set[int] = set()
    for index, operation in enumerate(plan):
        try:
            replay.apply(operation)
        except (OperationError, SchemaError):
            failed.add(index)
    for diagnostic in verdict.diagnostics:
        assert diagnostic.index in failed, (
            f"diagnostic did not reproduce dynamically: {diagnostic}"
        )


@given(seed=st.integers(0, 5000))
@_SETTINGS
def test_repeated_rejection_is_stable(seed):
    """Rejecting the same plan twice gives byte-identical diagnostics
    (the second run exercises the analysis memo)."""
    schema, plan = _rejected_plan(seed, 1)
    assume(plan)
    assume(analyze_plan(plan, schema, normalize=False).diagnostics)
    workspace = Workspace(schema, "memo", validate_each_step=False)
    outcomes = []
    for _ in range(2):
        with pytest.raises(PlanPreflightError) as error:
            workspace.apply_plan(plan, normalize=False)
        outcomes.append(_diagnostic_tuples(error.value))
    assert outcomes[0] == outcomes[1]
    assert workspace.schema.stats()["analysis.hits"] >= 1
