"""The significant-example generator: one witness + near-miss per site.

A *site* is one instance-level constraint of the schema: a relationship
end (cardinality / inverse / order-by / isa-extent / part-of /
instance-of) or a declared key.  For each site the generator builds two
minimal populations -- one the constraint admits, one it rejects -- and
self-filters against :func:`repro.instances.check.check_population`:
pairs whose witness is not admitted, or whose near-miss does not
provoke the site's constraint kind, are dropped.  That filter is what
makes the generator safe to run on arbitrary (fuzz-evolved but
structurally valid) schemas: it never emits a claim the checker does
not back.

Everything is deterministic in the schema: object ids, attribute
values, and site order depend only on declaration order, so the same
schema always yields the same examples (the fuzzer and the preview
differ rely on this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.instances.check import check_population
from repro.instances.population import Population
from repro.model.relationships import RelationshipEnd, RelationshipKind
from repro.model.schema import Schema
from repro.model.types import ScalarType

#: Constraint families the generator covers, in reporting order.
CONSTRAINT_KINDS = (
    "cardinality",
    "inverse",
    "key",
    "order-by",
    "isa-extent",
    "part-of",
    "instance-of",
)


@dataclass(frozen=True)
class ExamplePair:
    """One constraint site with its admitted and rejected population."""

    kind: str
    subject: str  # e.g. "Department.staff" or "Person key (id)"
    description: str
    witness: Population
    near_miss: Population

    def render(self) -> str:
        lines = [
            f"{self.kind} at {self.subject}: {self.description}",
            "  admitted " + self.witness.render().replace("\n", "\n  "),
            "  rejected " + self.near_miss.render().replace("\n", "\n  "),
        ]
        return "\n".join(lines)


class _Builder:
    """Deterministic object factory: fills key closures with fresh values."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self.counter = 0

    def scalar_value(self, domain: ScalarType) -> object | None:
        self.counter += 1
        count = self.counter
        name = domain.name
        if name in ("short", "long", "octet"):
            return count
        if name in ("float", "double"):
            return count + 0.5
        if name == "boolean":
            return count % 2 == 1
        if name == "char":
            return chr(ord("a") + (count - 1) % 26)
        if name == "string":
            text = f"v{count:03d}"
            if domain.size is not None:
                text = text[-domain.size:] if domain.size < len(text) else text
            return text
        if name == "date":
            return f"2000-01-{(count - 1) % 28 + 1:02d}"
        if name == "time":
            return f"12:{(count - 1) % 60:02d}:00"
        if name in ("timestamp", "interval"):
            return f"t{count:03d}"
        return None  # void

    def key_attributes(self, type_name: str) -> list[str] | None:
        """Attributes an object of *type_name* must value to satisfy every
        key whose extent contains it; ``None`` when any is not scalar."""
        schema = self.schema
        if type_name not in schema.interfaces:
            return None
        available = schema.inherited_attributes(type_name)
        needed: list[str] = []
        for interface in (type_name, *sorted(schema.ancestors(type_name))):
            for key in schema.get(interface).keys:
                for attr in key:
                    owner = available.get(attr)
                    if owner is None:
                        return None  # structurally broken key; unfillable
                    domain = schema.get(owner).attributes[attr].type
                    if not isinstance(domain, ScalarType):
                        return None
                    if domain.name == "void":
                        return None
                    if attr not in needed:
                        needed.append(attr)
        return needed

    def make(
        self,
        pop: Population,
        type_name: str,
        oid: str,
        presets: dict[str, object] | None = None,
    ) -> bool:
        """Add one key-satisfying object; ``False`` when unfillable."""
        needed = self.key_attributes(type_name)
        if needed is None:
            return False
        available = self.schema.inherited_attributes(type_name)
        values: dict[str, object] = {}
        for attr in needed:
            domain = self.schema.get(available[attr]).attributes[attr].type
            values[attr] = self.scalar_value(domain)
        if presets:
            for attr, value in presets.items():
                values[attr] = value
        pop.add(oid, type_name, **values)
        return True

    def fill_attributes(
        self, pop: Population, oid: str, type_name: str, attrs: Iterable[str]
    ) -> bool:
        """Give *oid* fresh scalar values for *attrs* (e.g. order-by)."""
        available = self.schema.inherited_attributes(type_name)
        obj = pop.get(oid)
        for attr in attrs:
            if attr in obj.attributes:
                continue
            owner = available.get(attr)
            if owner is None:
                return False
            domain = self.schema.get(owner).attributes[attr].type
            if not isinstance(domain, ScalarType):
                return False
            obj.attributes[attr] = self.scalar_value(domain)
        return True


def _end_sites(
    schema: Schema, interfaces: set[str] | None
) -> list[tuple[str, RelationshipEnd]]:
    return [
        (owner, end)
        for owner, end in schema.relationship_pairs()
        if interfaces is None or owner in interfaces
    ]


def _cardinality_pair(
    schema: Schema, owner: str, end: RelationshipEnd
) -> ExamplePair | None:
    subject = f"{owner}.{end.name}"
    arity = 2 if end.is_to_many else 1
    witness = Population(f"{subject}_witness")
    builder = _Builder(schema)
    if not builder.make(witness, owner, "o1"):
        return None
    for index in range(arity):
        oid = f"t{index + 1}"
        if not builder.make(witness, end.target_type, oid):
            return None
        witness.wire(schema, "o1", end.name, oid)
    near = Population(f"{subject}_near_miss")
    builder = _Builder(schema)
    if not builder.make(near, owner, "o1"):
        return None
    if end.is_to_many:
        if end.collection_kind != "set":
            return None  # list/bag ends admit duplicates; no near-miss here
        if not builder.make(near, end.target_type, "t1"):
            return None
        near.wire(schema, "o1", end.name, "t1")
        near.wire(schema, "o1", end.name, "t1")
        description = (
            f"a set-valued {end.role} end admits many distinct targets "
            "but rejects a repeated one"
        )
    else:
        for index in range(2):
            oid = f"t{index + 1}"
            if not builder.make(near, end.target_type, oid):
                return None
            near.wire(schema, "o1", end.name, oid)
        description = (
            "a to-one end admits a single target but rejects two"
        )
    return ExamplePair("cardinality", subject, description, witness, near)


def _inverse_pair(
    schema: Schema, owner: str, end: RelationshipEnd
) -> ExamplePair | None:
    if schema.find_inverse(owner, end) is None:
        return None
    subject = f"{owner}.{end.name}"
    witness = Population(f"{subject}_witness")
    builder = _Builder(schema)
    if not builder.make(witness, owner, "o1"):
        return None
    if not builder.make(witness, end.target_type, "t1"):
        return None
    witness.wire(schema, "o1", end.name, "t1")
    near = Population(f"{subject}_near_miss")
    builder = _Builder(schema)
    if not builder.make(near, owner, "o1"):
        return None
    if not builder.make(near, end.target_type, "t1"):
        return None
    near.wire(schema, "o1", end.name, "t1", mirror=False)
    return ExamplePair(
        "inverse", subject,
        f"a link is admitted only when mirrored on "
        f"{end.inverse_type}::{end.inverse_name}",
        witness, near,
    )


def _key_pairs(
    schema: Schema, interfaces: set[str] | None
) -> list[ExamplePair]:
    pairs: list[ExamplePair] = []
    for interface in schema:
        if interfaces is not None and interface.name not in interfaces:
            continue
        for key in interface.keys:
            subject = f"{interface.name} key ({', '.join(key)})"
            witness = Population(f"{interface.name}_key_witness")
            builder = _Builder(schema)
            if not builder.make(witness, interface.name, "o1"):
                continue
            if not builder.make(witness, interface.name, "o2"):
                continue
            near = Population(f"{interface.name}_key_near_miss")
            builder = _Builder(schema)
            if not builder.make(near, interface.name, "o1"):
                continue
            presets = {
                attr: near.get("o1").attributes[attr] for attr in key
            }
            if not builder.make(near, interface.name, "o2", presets):
                continue
            pairs.append(ExamplePair(
                "key", subject,
                "two objects of the extent are admitted with distinct "
                "key values and rejected with equal ones",
                witness, near,
            ))
    return pairs


def _order_by_pair(
    schema: Schema, owner: str, end: RelationshipEnd
) -> ExamplePair | None:
    if not end.order_by or not end.is_to_many:
        return None
    subject = f"{owner}.{end.name}"

    def build(reverse: bool) -> Population | None:
        pop = Population(
            f"{subject}_{'near_miss' if reverse else 'witness'}"
        )
        builder = _Builder(schema)
        if not builder.make(pop, owner, "o1"):
            return None
        for oid in ("t1", "t2"):
            if not builder.make(pop, end.target_type, oid):
                return None
            if not builder.fill_attributes(
                pop, oid, end.target_type, end.order_by
            ):
                return None
        keyed = sorted(
            ("t1", "t2"),
            key=lambda oid: tuple(
                pop.get(oid).attributes[attr] for attr in end.order_by
            ),
            reverse=reverse,
        )
        for oid in keyed:
            pop.wire(schema, "o1", end.name, oid)
        return pop

    witness = build(reverse=False)
    near = build(reverse=True)
    if witness is None or near is None:
        return None
    return ExamplePair(
        "order-by", subject,
        f"targets are admitted in ({', '.join(end.order_by)}) order "
        "and rejected out of it",
        witness, near,
    )


def _isa_extent_pair(
    schema: Schema, owner: str, end: RelationshipEnd
) -> ExamplePair | None:
    descendants = sorted(schema.descendants(end.target_type))
    if not descendants:
        return None
    subject = f"{owner}.{end.name}"
    witness = Population(f"{subject}_witness")
    builder = _Builder(schema)
    if not builder.make(witness, owner, "o1"):
        return None
    sub = next(
        (d for d in descendants if builder.make(witness, d, "t1")), None
    )
    if sub is None:
        return None
    witness.wire(schema, "o1", end.name, "t1")
    excluded = {end.target_type, *schema.descendants(end.target_type)}
    near = Population(f"{subject}_near_miss")
    builder = _Builder(schema)
    if not builder.make(near, owner, "o1"):
        return None
    alien = next(
        (
            name for name in schema.type_names()
            if name not in excluded and builder.make(near, name, "t1")
        ),
        None,
    )
    if alien is None:
        return None
    near.wire(schema, "o1", end.name, "t1")
    return ExamplePair(
        "isa-extent", subject,
        f"a {sub} (subtype) target is in the extent of "
        f"{end.target_type}; a {alien} is not",
        witness, near,
    )


def _hierarchy_pair(
    schema: Schema, owner: str, end: RelationshipEnd, kind: str
) -> ExamplePair | None:
    if not end.is_to_many:
        return None
    subject = f"{owner}.{end.name}"
    member = "part" if kind == "part-of" else "instance"
    witness = Population(f"{subject}_witness")
    builder = _Builder(schema)
    if not builder.make(witness, owner, "w1"):
        return None
    for oid in ("p1", "p2"):
        if not builder.make(witness, end.target_type, oid):
            return None
        witness.wire(schema, "w1", end.name, oid)
    near = Population(f"{subject}_near_miss")
    builder = _Builder(schema)
    if not builder.make(near, owner, "w1"):
        return None
    if not builder.make(near, owner, "w2"):
        return None
    if not builder.make(near, end.target_type, "p1"):
        return None
    near.wire(schema, "w1", end.name, "p1")
    near.wire(schema, "w2", end.name, "p1")
    return ExamplePair(
        kind, subject,
        f"the implicit 1:N admits one {owner} with many {member}s and "
        f"rejects one {member} shared by two",
        witness, near,
    )


def significant_examples(
    schema: Schema,
    interfaces: Iterable[str] | None = None,
    kinds: Iterable[str] | None = None,
) -> list[ExamplePair]:
    """Witness + near-miss pairs for every instantiable constraint site.

    ``interfaces`` restricts to sites owned by those interfaces (keys
    declared there, relationship ends declared there); ``kinds``
    restricts the constraint families.  Every returned pair is verified:
    the witness is admitted by :func:`check_population` and the
    near-miss provokes at least one issue of the pair's kind.
    """
    interface_set = None if interfaces is None else set(interfaces)
    kind_set = set(kinds) if kinds is not None else set(CONSTRAINT_KINDS)
    candidates: list[ExamplePair] = []
    ends = _end_sites(schema, interface_set)
    if "cardinality" in kind_set:
        candidates.extend(
            pair for owner, end in ends
            if (pair := _cardinality_pair(schema, owner, end)) is not None
        )
    if "inverse" in kind_set:
        candidates.extend(
            pair for owner, end in ends
            if (pair := _inverse_pair(schema, owner, end)) is not None
        )
    if "key" in kind_set:
        candidates.extend(_key_pairs(schema, interface_set))
    if "order-by" in kind_set:
        candidates.extend(
            pair for owner, end in ends
            if (pair := _order_by_pair(schema, owner, end)) is not None
        )
    if "isa-extent" in kind_set:
        candidates.extend(
            pair for owner, end in ends
            if (pair := _isa_extent_pair(schema, owner, end)) is not None
        )
    for kind, rel_kind in (
        ("part-of", RelationshipKind.PART_OF),
        ("instance-of", RelationshipKind.INSTANCE_OF),
    ):
        if kind in kind_set:
            candidates.extend(
                pair for owner, end in ends
                if end.kind is rel_kind
                and (pair := _hierarchy_pair(schema, owner, end, kind))
                is not None
            )
    return [
        pair for pair in candidates
        if not check_population(schema, pair.witness)
        and any(
            issue.kind == pair.kind
            for issue in check_population(schema, pair.near_miss)
        )
    ]
