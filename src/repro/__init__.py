"""repro: shrink wrap schema reuse via concept schema modification.

A faithful, from-scratch reproduction of Delcambre & Langston, "Reusing
(Shrink Wrap) Schemas by Modifying Concept Schemas" (OGI TR CS/E 95-009;
ICDE 1996).  The library provides:

* an extended ODMG object model with part-of and instance-of
  relationships (:mod:`repro.model`) and its ODL front end
  (:mod:`repro.odl`);
* the four concept schema types and the decomposition algorithm
  (:mod:`repro.concepts`);
* the complete Appendix A modification-operation language
  (:mod:`repro.ops`);
* the schema repository, workspace, and mapping (:mod:`repro.repository`);
* the knowledge component -- constraints, propagation, consistency,
  impact reports (:mod:`repro.knowledge`);
* the interactive schema designer (:mod:`repro.designer`);
* the paper's example schemas (:mod:`repro.catalog`) and analyses
  (:mod:`repro.analysis`).

Quick start::

    from repro.catalog import university_schema
    from repro.designer import DesignSession
    from repro.repository import SchemaRepository

    session = DesignSession(SchemaRepository(university_schema()))
    print(session.list_concepts())
    session.select("ww:Course_Offering")
    session.modify("delete_attribute(Course_Offering, room)")
    deliverables = session.finish("my_university")
    print(deliverables.mapping.render())
"""

from repro.concepts import ConceptKind, decompose, reconstruct
from repro.designer import DesignSession
from repro.model import Schema
from repro.odl import parse_schema, print_schema
from repro.ops import parse_operation, parse_script
from repro.repository import SchemaRepository, Workspace

__version__ = "1.0.0"

__all__ = [
    "ConceptKind",
    "DesignSession",
    "Schema",
    "SchemaRepository",
    "Workspace",
    "__version__",
    "decompose",
    "parse_operation",
    "parse_schema",
    "parse_script",
    "print_schema",
    "reconstruct",
]
