"""The lumber-yard house schema (Figure 5): a parts explosion.

"The construction supplies necessary to build a house, for instance, can
be recorded with the roof of the house consisting of plywood decking,
tar paper, and shingles."  The aggregation hierarchy rooted at ``House``
is the paper's example of the rooted-aggregation concept schema pattern
(VLSI/CAD-style part-of structures).
"""

from __future__ import annotations

from repro.model.schema import Schema
from repro.odl.parser import parse_schema

HOUSE_ODL = """
// Figure 5: the house aggregation hierarchy for a lumber yard.

interface House {
    extent houses;
    keys (lot_number);
    attribute string(20) lot_number;
    attribute long square_feet;
    part_of relationship set<Structure> structure inverse Structure::of_house;
    part_of relationship set<Finish_Element> finish inverse Finish_Element::of_house;
    part_of relationship set<Plumbing> plumbing inverse Plumbing::of_house;
};

interface Structure {
    attribute string(30) kind;
    part_of relationship House of_house inverse House::structure;
    part_of relationship set<Roof> roof inverse Roof::of_structure;
    part_of relationship set<Frame> frame inverse Frame::of_structure;
    part_of relationship set<Foundation> foundation
        inverse Foundation::of_structure;
};

interface Roof {
    attribute float pitch;
    part_of relationship Structure of_structure inverse Structure::roof;
    part_of relationship set<Plywood_Decking> decking
        inverse Plywood_Decking::of_roof;
    part_of relationship set<Tar_Paper> tar_paper inverse Tar_Paper::of_roof;
    part_of relationship set<Shingle> shingles inverse Shingle::of_roof;
};

interface Plywood_Decking {
    attribute float thickness;
    part_of relationship Roof of_roof inverse Roof::decking;
};

interface Tar_Paper {
    attribute short weight;
    part_of relationship Roof of_roof inverse Roof::tar_paper;
};

interface Shingle {
    attribute string(20) material;
    part_of relationship Roof of_roof inverse Roof::shingles;
};

interface Frame {
    attribute string(20) lumber_grade;
    part_of relationship Structure of_structure inverse Structure::frame;
    part_of relationship set<Stud> studs inverse Stud::of_frame;
    part_of relationship set<Joist> joists inverse Joist::of_frame;
};

interface Stud {
    attribute short length_inches;
    part_of relationship Frame of_frame inverse Frame::studs;
};

interface Joist {
    attribute short span_inches;
    part_of relationship Frame of_frame inverse Frame::joists;
};

interface Foundation {
    attribute string(20) kind;
    part_of relationship Structure of_structure inverse Structure::foundation;
    part_of relationship set<Concrete> concrete inverse Concrete::of_foundation;
    part_of relationship set<Re_Bar> re_bar inverse Re_Bar::of_foundation;
};

interface Concrete {
    attribute float cubic_yards;
    part_of relationship Foundation of_foundation inverse Foundation::concrete;
};

interface Re_Bar {
    attribute short gauge;
    part_of relationship Foundation of_foundation inverse Foundation::re_bar;
};

interface Finish_Element {
    attribute string(30) kind;
    part_of relationship House of_house inverse House::finish;
    part_of relationship set<Window> windows inverse Window::of_finish;
    part_of relationship set<Door> doors inverse Door::of_finish;
};

interface Window {
    attribute short width_inches;
    attribute short height_inches;
    part_of relationship Finish_Element of_finish inverse Finish_Element::windows;
};

interface Door {
    attribute string(20) style;
    part_of relationship Finish_Element of_finish inverse Finish_Element::doors;
};

interface Plumbing {
    attribute string(20) material;
    part_of relationship House of_house inverse House::plumbing;
};
"""


def house_schema(name: str = "lumber_yard") -> Schema:
    """Parse and return the house aggregation schema."""
    schema = parse_schema(HOUSE_ODL, name=name)
    schema.validate()
    return schema
