"""Tests for the CLI entry point and the remaining command surface."""

import pytest

from repro.catalog import UNIVERSITY_ODL
from repro.designer.cli import execute, main
from repro.designer.session import DesignSession
from repro.repository.repository import SchemaRepository


@pytest.fixture
def session(small):
    return DesignSession(SchemaRepository(small, custom_name="cli"))


class TestMain:
    def test_usage_without_arguments(self, capsys):
        assert main([]) == 2
        assert "usage:" in capsys.readouterr().out

    def test_interactive_loop(self, tmp_path, capsys, monkeypatch):
        schema_path = tmp_path / "university.odl"
        schema_path.write_text(UNIVERSITY_ODL, encoding="utf-8")
        lines = iter(["concepts", "select ww:Book", "quit"])
        monkeypatch.setattr(
            "builtins.input", lambda prompt="": next(lines)
        )
        assert main([str(schema_path)]) == 0
        output = capsys.readouterr().out
        assert "loaded shrink wrap schema" in output
        assert "ww:Course_Offering" in output
        assert "wagon wheel: Book" in output

    def test_eof_terminates_cleanly(self, tmp_path, capsys, monkeypatch):
        schema_path = tmp_path / "s.odl"
        schema_path.write_text("interface A {};", encoding="utf-8")

        def raise_eof(prompt=""):
            raise EOFError

        monkeypatch.setattr("builtins.input", raise_eof)
        assert main([str(schema_path)]) == 0


class TestExportCommands:
    def test_sql_command(self, session):
        output = execute(session, "sql")
        assert "CREATE TABLE person" in output
        assert "FOREIGN KEY" in output

    def test_er_command(self, session):
        output = execute(session, "er")
        assert "entity Employee ISA Person" in output

    def test_exports_reflect_workspace_changes(self, session):
        execute(session, "apply add_attribute(Person, date, dob)")
        assert "dob DATE" in execute(session, "sql")

    def test_refactor_command_rejection(self, session):
        output = execute(
            session, "refactor introduce_abstract_supertype(Person, (A, B))"
        )
        assert output.startswith("REJECTED:")

    def test_suggest_command(self, session):
        assert execute(session, "suggest") == "no repairs to suggest"


class TestViewAndDocumentCommands:
    def test_view_command(self, session):
        output = execute(session, "view Person naming")
        assert output == "registered ww:Person#naming"
        assert "wagon wheel: Person" in execute(session, "show ww:Person#naming")

    def test_view_command_usage(self, session):
        assert execute(session, "view Person").startswith("usage:")

    def test_view_with_spoke_filter(self, session):
        execute(session, "view Department staffing staff")
        concept = session.repository.concept("ww:Department#staffing")
        assert [s.path_name for s in concept.spokes] == ["staff"]

    def test_document_command(self, session):
        execute(session, "apply add_attribute(Person, date, dob)")
        output = execute(session, "document")
        assert "# Customization record" in output
        assert "add_attribute(Person, date, dob)" in output


class TestTranslationGuards:
    def test_nested_collection_attribute_rejected(self):
        from repro.odl.parser import parse_schema
        from repro.translate.relational import to_relational

        schema = parse_schema(
            "interface A { attribute set<list<string(3)>> grid; };", name="s"
        )
        with pytest.raises(ValueError) as info:
            to_relational(schema)
        assert "A.grid" in str(info.value)

    def test_sql_type_rejects_named_types(self):
        from repro.model.types import named
        from repro.translate.relational import _sql_type

        with pytest.raises(ValueError):
            _sql_type(named("A"))
