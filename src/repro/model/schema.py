"""The schema container of the extended ODMG object model.

A :class:`Schema` is a named collection of :class:`~repro.model.interface.
InterfaceDef` objects plus graph-structured queries over the three link
families the paper's concept schemas are built from:

* the **generalization hierarchy** (supertype lists),
* the **aggregation hierarchy** (part-of relationship ends),
* the **instance-of hierarchy** (instance-of relationship ends).

The queries here are purely structural; validation rules live in
:mod:`repro.model.validation` and concept-schema extraction in
:mod:`repro.concepts`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from repro.model.errors import (
    DuplicateNameError,
    InvalidModelError,
    UnknownTypeError,
)
from repro.model.index import ASPECT_MEMBERSHIP, DirtyJournal, SchemaIndex
from repro.model.interface import InterfaceDef
from repro.model.relationships import RelationshipEnd

if TYPE_CHECKING:
    from repro.model.validation_cache import ValidationCache


@dataclass
class Schema:
    """A named, global schema: the unit the paper calls *shrink wrap*.

    Interfaces are held in insertion order (printed ODL is stable); lookup
    is by name, following the paper's name-equivalence assumption.
    """

    name: str
    interfaces: dict[str, InterfaceDef] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidModelError("a schema must have a name")
        # Not dataclass fields: the generation stamp, index, journal and
        # validation cache carry cache state, not schema content, and
        # must stay out of __eq__.
        self._generation = 0
        self._index = SchemaIndex(self)
        self._journal = DirtyJournal()
        self._validation: "ValidationCache | None" = None
        self._hooks: dict[str, Callable[[frozenset[str]], None]] = {}
        for interface in self.interfaces.values():
            self._subscribe(interface)

    # ------------------------------------------------------------------
    # Index & invalidation
    # ------------------------------------------------------------------

    @property
    def generation(self) -> int:
        """Monotonic mutation counter; stamps the index's caches."""
        return self._generation

    @property
    def index(self) -> SchemaIndex:
        """The memoized reverse-adjacency index over this schema."""
        return self._index

    @property
    def journal(self) -> DirtyJournal:
        """Accumulated dirty notes since the validation cache last read it."""
        return self._journal

    @property
    def validation(self) -> "ValidationCache":
        """The lazily created incremental validation cache."""
        if self._validation is None:
            from repro.model.validation_cache import ValidationCache

            self._validation = ValidationCache(self)
        return self._validation

    def _bump_generation(self) -> None:
        self._generation += 1

    def _subscribe(self, interface: InterfaceDef) -> None:
        name = interface.name

        def hook(aspects: frozenset[str], _name: str = name) -> None:
            self._generation += 1
            self._journal.note_touch(_name, aspects)

        self._hooks[name] = hook
        interface._subscribe_owner(hook)

    def _unsubscribe(self, interface: InterfaceDef) -> None:
        hook = self._hooks.pop(interface.name, None)
        if hook is not None:
            interface._unsubscribe_owner(hook)

    def touch(self) -> None:
        """Invalidate the index after an out-of-band mutation.

        Every :class:`InterfaceDef` mutator and the interface-management
        methods below bump the generation automatically; code that
        mutates schema content directly must call this instead.  The
        validation cache cannot tell what moved, so it marks everything
        dirty; prefer :meth:`touch_order` for pure reorderings.
        """
        self._bump_generation()
        self._journal.note_full()

    def touch_order(self) -> None:
        """Invalidate after reordering ``interfaces`` without edits.

        Restoring declaration order on undo changes no definition, only
        the order issues are reported in, so the validation cache only
        needs to re-assemble (and re-run order-sensitive tie-breaks),
        not re-check any interface.
        """
        self._bump_generation()
        self._journal.note_order()

    def note_validation_scope(
        self, names: Iterable[str], aspects: frozenset[str]
    ) -> None:
        """Record an operation's declared read/write scope in the journal.

        Belt-and-suspenders over the mutator-level hooks: operations
        declare the types and aspects they may have touched
        (``SchemaOperation.validation_scope``), and the workspace feeds
        that here so the dirty set is correct even for operations whose
        undo closures mutate state out of band.
        """
        if ASPECT_MEMBERSHIP in aspects:
            for name in names:
                if name in self.interfaces:
                    self._journal.note_added(name)
                else:
                    self._journal.note_removed(name)
            rest = aspects - {ASPECT_MEMBERSHIP}
            if not rest:
                return
            aspects = rest
        for name in names:
            self._journal.note_touch(name, aspects)

    # ------------------------------------------------------------------
    # Interface management
    # ------------------------------------------------------------------

    def add_interface(self, interface: InterfaceDef) -> None:
        """Add an interface; the type name must be free in the schema."""
        if interface.name in self.interfaces:
            raise DuplicateNameError(
                f"schema {self.name!r} already defines {interface.name!r}"
            )
        self.interfaces[interface.name] = interface
        self._subscribe(interface)
        self._bump_generation()
        self._journal.note_added(interface.name)

    def remove_interface(self, name: str) -> InterfaceDef:
        """Remove and return the interface called *name*."""
        try:
            removed = self.interfaces.pop(name)
        except KeyError:
            raise UnknownTypeError(
                f"schema {self.name!r} does not define {name!r}"
            ) from None
        self._unsubscribe(removed)
        self._bump_generation()
        self._journal.note_removed(name)
        return removed

    def get(self, name: str) -> InterfaceDef:
        """Return the interface called *name* or raise ``UnknownTypeError``."""
        try:
            return self.interfaces[name]
        except KeyError:
            raise UnknownTypeError(
                f"schema {self.name!r} does not define {name!r}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self.interfaces

    def __iter__(self) -> Iterator[InterfaceDef]:
        return iter(self.interfaces.values())

    def __len__(self) -> int:
        return len(self.interfaces)

    def type_names(self) -> list[str]:
        """Interface names in declaration order."""
        return list(self.interfaces)

    # ------------------------------------------------------------------
    # Generalization hierarchy queries
    # ------------------------------------------------------------------

    def subtypes(self, name: str) -> list[str]:
        """Direct subtypes of *name*, in declaration order."""
        return list(self._index.subtype_map().get(name, ()))

    def ancestors(self, name: str) -> set[str]:
        """All (transitive) supertypes of *name*; excludes *name* itself.

        Only *resolved* supertypes count: a dangling supertype name is
        not a type of this schema, and including it would make
        ``isa_related`` asymmetric with ``descendants`` (which can never
        reach an undefined type).
        """
        interfaces = self.interfaces
        result: set[str] = set()
        frontier = [
            supertype
            for supertype in self.get(name).supertypes
            if supertype in interfaces
        ]
        while frontier:
            current = frontier.pop()
            if current in result:
                continue
            result.add(current)
            frontier.extend(
                supertype
                for supertype in interfaces[current].supertypes
                if supertype in interfaces
            )
        return result

    def descendants(self, name: str) -> set[str]:
        """All (transitive) subtypes of *name*; excludes *name* itself."""
        self.get(name)  # raise for unknown types
        subtype_map = self._index.subtype_map()
        result: set[str] = set()
        frontier = list(subtype_map.get(name, ()))
        while frontier:
            current = frontier.pop()
            if current in result:
                continue
            result.add(current)
            frontier.extend(subtype_map.get(current, ()))
        return result

    def isa_related(self, first: str, second: str) -> bool:
        """True when the two types lie on one generalization path.

        This is the paper's *semantic stability* test: information may be
        moved between two object types only when one is an ancestor of the
        other (or they are the same type).
        """
        if first == second:
            return True
        return second in self.ancestors(first) or second in self.descendants(first)

    def generalization_roots(self) -> list[str]:
        """Types with subtypes but no resolved supertypes: hierarchy roots.

        A type whose only supertypes are dangling names tops every ISA
        path that actually exists in the schema, so it counts as a root.
        """
        subtype_map = self._index.subtype_map()
        interfaces = self.interfaces
        return [
            interface.name
            for interface in self
            if interface.name in subtype_map
            and not any(s in interfaces for s in interface.supertypes)
        ]

    def inherited_attributes(self, name: str) -> dict[str, str]:
        """Map attribute name -> defining type, walking supertypes.

        Local attributes win over inherited ones (overriding); among
        multiple supertypes the first declaration wins, matching the
        left-to-right linearisation ODL implies.
        """
        result: dict[str, str] = {}
        for owner in self._linearised_ancestry(name):
            for attr_name in self.get(owner).attributes:
                result.setdefault(attr_name, owner)
        return result

    def _linearised_ancestry(self, name: str) -> list[str]:
        """*name* followed by its ancestors, nearest first, depth-first."""
        order: list[str] = []
        seen: set[str] = set()

        def visit(current: str) -> None:
            if current in seen or current not in self.interfaces:
                return
            seen.add(current)
            order.append(current)
            for supertype in self.interfaces[current].supertypes:
                visit(supertype)

        visit(name)
        return order

    # ------------------------------------------------------------------
    # Part-of / instance-of hierarchy queries
    # ------------------------------------------------------------------

    def part_of_edges(self) -> list[tuple[str, str, RelationshipEnd]]:
        """(whole, part, to-parts end) triples, in declaration order."""
        return list(self._index.part_of_edges())

    def instance_of_edges(self) -> list[tuple[str, str, RelationshipEnd]]:
        """(generic, instance, to-instances end) triples."""
        return list(self._index.instance_of_edges())

    def parts(self, name: str) -> list[str]:
        """Direct components of *name* in the aggregation hierarchy."""
        return list(self._index.parts_map().get(name, ()))

    def wholes(self, name: str) -> list[str]:
        """Direct wholes that *name* is a component of."""
        return list(self._index.wholes_map().get(name, ()))

    def aggregation_roots(self) -> list[str]:
        """Wholes that are not themselves parts of anything."""
        wholes = self._index.parts_map()
        parts = self._index.wholes_map()
        return [
            name for name in self.type_names()
            if name in wholes and name not in parts
        ]

    def instance_of_roots(self) -> list[str]:
        """Generic entities that are not instances of anything."""
        generics = self._index.instance_map()
        instances = self._index.generic_map()
        return [
            name for name in self.type_names()
            if name in generics and name not in instances
        ]

    # ------------------------------------------------------------------
    # Whole-schema helpers
    # ------------------------------------------------------------------

    def relationship_pairs(self) -> list[tuple[str, RelationshipEnd]]:
        """Every (owner name, end) pair in declaration order."""
        return list(self._index.relationship_pairs())

    def find_inverse(self, owner: str, end: RelationshipEnd) -> RelationshipEnd | None:
        """The declared inverse end of *end*, or ``None`` if missing."""
        if end.inverse_type not in self.interfaces:
            return None
        other = self.interfaces[end.inverse_type]
        inverse = other.relationships.get(end.inverse_name)
        if inverse is None:
            return None
        if inverse.target_type != owner or inverse.inverse_name != end.name:
            return None
        return inverse

    def copy(self, name: str | None = None) -> "Schema":
        """Structural copy of the schema (optionally renamed)."""
        duplicate = Schema(name or self.name)
        for interface in self:
            duplicate.add_interface(interface.copy())
        return duplicate

    def validate(self) -> None:
        """Raise :class:`~repro.model.errors.ValidationError` on problems.

        Delegates to :func:`repro.model.validation.validate_schema` and
        raises when any error-severity issue is found.
        """
        from repro.model.validation import validate_schema

        validate_schema(self, raise_on_error=True)

    def stats(self) -> dict[str, int]:
        """Size metrics plus index and validation counters."""
        index = self._index.stats()
        if self._validation is not None:
            validation = self._validation.stats()
        else:
            validation = {
                "clean_hits": 0,
                "full_validations": 0,
                "incremental_validations": 0,
                "interfaces_revalidated": 0,
                "interfaces_reused": 0,
            }
        return {
            "interfaces": len(self),
            "attributes": sum(len(i.attributes) for i in self),
            "relationship_ends": sum(len(i.relationships) for i in self),
            "operations": sum(len(i.operations) for i in self),
            "supertype_links": sum(len(i.supertypes) for i in self),
            "part_of_links": self._index.part_of_edge_count(),
            "instance_of_links": self._index.instance_of_edge_count(),
            "index_hits": index["hits"],
            "index_misses": index["misses"],
            "index_rebuilds": index["rebuilds"],
            "index_generation": index["generation"],
            "validation_clean_hits": validation["clean_hits"],
            "validation_full": validation["full_validations"],
            "validation_incremental": validation["incremental_validations"],
            "validation_revalidated": validation["interfaces_revalidated"],
            "validation_reused": validation["interfaces_reused"],
        }

    def __str__(self) -> str:
        return f"schema {self.name} ({len(self)} interfaces)"


def schema_from_interfaces(name: str, interfaces: Iterable[InterfaceDef]) -> Schema:
    """Convenience constructor used by the catalog and tests."""
    schema = Schema(name)
    for interface in interfaces:
        schema.add_interface(interface)
    return schema
