"""Table 2: addition (and mirrored deletion) coverage of ODL candidates.

Every candidate for modification enumerated from the ODL syntax must be
covered by an add operation, and "the deletion operations are identical,
with the word 'add' changed to 'delete' in the operation name".
"""

from repro.analysis.completeness import format_table, table2_rows


def test_bench_table2(benchmark, report):
    add_rows = benchmark(table2_rows, "add")
    delete_rows = table2_rows("delete")

    report(
        "table2_addition_coverage",
        format_table(add_rows, "Table 2: addition operations on ODL candidates")
        + "\n\n"
        + format_table(
            delete_rows,
            "Table 2 (mirror): deletion operations on ODL candidates",
        ),
    )

    assert len(add_rows) == 26
    assert all(row.implemented for row in add_rows)
    assert all(row.implemented for row in delete_rows)
    for add_row, delete_row in zip(add_rows, delete_rows):
        assert delete_row.operation == "delete" + add_row.operation[3:]

    # Every construct family of the extended ODL appears.
    candidates = {row.candidate for row in add_rows}
    assert candidates == {
        "Interface Definition", "Type Properties", "Attribute",
        "Relationship", "Operation", "Part-of Relationship",
        "Instance-of Relationship",
    }
