"""Unit tests for part-of and instance-of relationship operations."""

import pytest

from repro.model.fingerprint import schema_fingerprint
from repro.model.relationships import RelationshipKind
from repro.model.types import list_of, named, set_of
from repro.odl.parser import parse_schema
from repro.ops.base import ConstraintViolation, OperationContext
from repro.ops.instance_of_ops import (
    AddInstanceOfRelationship,
    DeleteInstanceOfRelationship,
    ModifyInstanceOfCardinality,
    ModifyInstanceOfOrderBy,
    ModifyInstanceOfTargetType,
)
from repro.ops.part_of_ops import (
    AddPartOfRelationship,
    DeletePartOfRelationship,
    ModifyPartOfCardinality,
    ModifyPartOfOrderBy,
    ModifyPartOfTargetType,
)


class TestAddPartOf:
    def test_to_part_of_variant(self, small):
        """A collection target declares the whole's to-parts end."""
        AddPartOfRelationship(
            "Department", set_of("Employee"), "units", "Employee", "unit_of"
        ).apply(small)
        end = small.get("Department").get_relationship("units")
        assert end.kind is RelationshipKind.PART_OF
        assert end.role == "to_parts"
        inverse = small.get("Employee").get_relationship("unit_of")
        assert inverse.role == "to_whole"
        small.validate()

    def test_to_whole_variant(self, small):
        """A plain target declares the part's to-whole end; the
        auto-created inverse is the to-many end (implicit 1:N)."""
        AddPartOfRelationship(
            "Employee", named("Department"), "unit_of", "Department", "units"
        ).apply(small)
        inverse = small.get("Department").get_relationship("units")
        assert inverse.is_to_many
        small.validate()

    def test_both_ends_to_many_rejected(self, small):
        AddPartOfRelationship(
            "Department", set_of("Employee"), "units", "Employee", "unit_of"
        ).apply(small)
        small.get("Employee").remove_relationship("unit_of")
        with pytest.raises(ConstraintViolation):
            AddPartOfRelationship(
                "Employee", set_of("Department"), "unit_of", "Department",
                "units",
            ).apply(small)

    def test_undo(self, small):
        before = schema_fingerprint(small)
        undo = AddPartOfRelationship(
            "Department", set_of("Employee"), "units", "Employee", "unit_of"
        ).apply(small)
        undo()
        assert schema_fingerprint(small) == before


class TestDeletePartOf:
    def test_deletes_pair(self, house):
        DeletePartOfRelationship("House", "structure").apply(house)
        assert "structure" not in house.get("House").relationships
        assert "of_house" not in house.get("Structure").relationships
        house.validate()

    def test_kind_checked(self, small):
        with pytest.raises(ConstraintViolation):
            DeletePartOfRelationship("Employee", "works_in").apply(small)


class TestModifyPartOf:
    @pytest.fixture
    def parts(self):
        schema = parse_schema(
            """
            interface Component { attribute string(10) code; };
            interface Widget : Component {
              part_of relationship Box in_box inverse Box::contents;
            };
            interface Gadget : Widget {};
            interface Box {
              part_of relationship set<Widget> contents inverse Widget::in_box
                  order_by (code);
            };
            """,
            name="parts",
        )
        schema.validate()
        return schema

    def test_retarget_up(self, parts):
        context = OperationContext(reference=parts.copy())
        ModifyPartOfTargetType(
            "Box", "contents", "Component", old_target_type="Widget"
        ).apply(parts, context)
        assert (
            parts.get("Box").get_relationship("contents").target_type
            == "Component"
        )
        assert "in_box" in parts.get("Component").relationships
        parts.validate()

    def test_retarget_down(self, parts):
        context = OperationContext(reference=parts.copy())
        ModifyPartOfTargetType(
            "Box", "contents", "Gadget", old_target_type="Widget"
        ).apply(parts, context)
        assert "in_box" in parts.get("Gadget").relationships

    def test_cardinality_on_to_parts_end(self, parts):
        ModifyPartOfCardinality(
            "Box", "contents", set_of("Widget"), list_of("Widget")
        ).apply(parts)
        assert (
            parts.get("Box").get_relationship("contents").collection_kind
            == "list"
        )

    def test_cardinality_on_to_whole_end_rejected(self, parts):
        with pytest.raises(ConstraintViolation) as info:
            ModifyPartOfCardinality(
                "Widget", "in_box", named("Box"), set_of("Box")
            ).apply(parts)
        assert "to-many end" in str(info.value)

    def test_to_parts_end_must_stay_collection(self, parts):
        ModifyPartOfOrderBy("Box", "contents", ("code",), ()).apply(parts)
        with pytest.raises(ConstraintViolation):
            ModifyPartOfCardinality(
                "Box", "contents", set_of("Widget"), named("Widget")
            ).apply(parts)

    def test_order_by(self, parts):
        ModifyPartOfOrderBy("Box", "contents", ("code",), ()).apply(parts)
        assert parts.get("Box").get_relationship("contents").order_by == ()


class TestInstanceOfOps:
    def test_add_to_instances_variant(self, small):
        AddInstanceOfRelationship(
            "Person", set_of("Employee"), "incarnations", "Employee",
            "generic_person",
        ).apply(small)
        end = small.get("Person").get_relationship("incarnations")
        assert end.kind is RelationshipKind.INSTANCE_OF
        assert end.role == "to_instances"
        small.validate()

    def test_delete_pair(self, software):
        DeleteInstanceOfRelationship("Application", "versions").apply(software)
        assert "version_of" not in software.get("Application_Version").relationships
        software.validate()

    def test_cardinality_to_instances_only(self, software):
        with pytest.raises(ConstraintViolation):
            ModifyInstanceOfCardinality(
                "Application_Version", "version_of",
                named("Application"), set_of("Application"),
            ).apply(software)

    def test_cardinality_kind_change(self, software):
        ModifyInstanceOfCardinality(
            "Application", "versions",
            set_of("Application_Version"), list_of("Application_Version"),
        ).apply(software)
        end = software.get("Application").get_relationship("versions")
        assert end.collection_kind == "list"

    def test_order_by(self, software):
        ModifyInstanceOfOrderBy(
            "Application", "versions", (), ("version_number",)
        ).apply(software)
        end = software.get("Application").get_relationship("versions")
        assert end.order_by == ("version_number",)

    def test_retarget_requires_isa_relative(self, software):
        context = OperationContext(reference=software.copy())
        with pytest.raises(ConstraintViolation):
            ModifyInstanceOfTargetType(
                "Application", "versions", "Installed_Version",
                old_target_type="Application_Version",
            ).apply(software, context)

    def test_kind_mismatch_rejected(self, house):
        with pytest.raises(ConstraintViolation):
            DeleteInstanceOfRelationship("House", "structure").apply(house)
