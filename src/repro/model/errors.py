"""Exception hierarchy for the extended ODMG object model.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch the library's failures with a single handler.  The model
layer raises :class:`SchemaError` subclasses; the operation layer
(:mod:`repro.ops`) and the ODL front end (:mod:`repro.odl`) define their own
branches on top of this base.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


class SchemaError(ReproError):
    """Base class for errors concerning schema structure or content."""


class DuplicateNameError(SchemaError):
    """A name that must be unique is already taken.

    Raised when adding an interface whose name exists in the schema, or a
    property (attribute, relationship, operation) whose name exists in the
    owning interface.  Name uniqueness is one of the paper's standing
    assumptions (Section 3.2, "Uniqueness").
    """


class UnknownTypeError(SchemaError):
    """An interface name was referenced but is not defined in the schema."""


class UnknownPropertyError(SchemaError):
    """An attribute, relationship, or operation name was not found."""


class InvalidModelError(SchemaError):
    """A construct violates a structural rule of the extended object model.

    Examples: a part-of "to parts" end without a collection type, an
    inverse declaration that names the wrong interface, or a supertype list
    containing duplicates.
    """


class ValidationError(SchemaError):
    """Schema-level validation failed.

    Carries the list of :class:`repro.model.validation.Issue` objects that
    were found, so tooling can present all problems at once rather than
    only the first.
    """

    def __init__(self, message: str, issues: list | None = None) -> None:
        super().__init__(message)
        self.issues = list(issues) if issues else []
