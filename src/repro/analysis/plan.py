"""Static analysis of operation plans: vet before you run.

The paper's methodology is plan-shaped -- a designer composes Appendix A
modification operations, constrained by Table 1 admissibility, semantic
stability, and name equivalence -- but every constraint in this repo was
checked dynamically, one op at a time, inside ``apply``.  This module
inspects a whole plan *without mutating the schema*, using the
:class:`~repro.ops.effects.EffectSignature` each operation class
declares:

* :func:`analyze_plan` builds a def-use/conflict graph over the plan,
  reports **pre-flight diagnostics** (operations that are statically
  guaranteed to fail: unknown or deleted names, duplicate type names,
  extent name-equivalence violations, Table 1 inadmissibility) with op
  indices before anything runs, and -- when the plan is clean --
  **normalizes** it (dead add→delete pairs, add/modify and
  modify-chain fusion) and partitions it into commuting **batches**;
* :meth:`repro.repository.workspace.Workspace.apply_plan` consumes the
  batches to validate once per batch instead of once per op;
* ``python -m repro.analysis.plan --schema file.odl --script plan.txt``
  prints the report from the command line.

Soundness contract (backed by the ``plan-analyzer-differential`` fuzzer
invariant):

* every diagnostic corresponds to a real dynamic failure of that op --
  the name/extent simulation mirrors exactly the checks the operations
  themselves make, so there are no false positives;
* a plan that passes clean *may* still fail dynamically (the analyzer
  does not model attribute- or relationship-level state), but
  normalization and batching never change what a clean, applicable plan
  computes: batches preserve execution order (they only coarsen
  validation), and rewrites are applied only when the ops involved are
  commutable to adjacency under the conflict relation.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field

from repro.concepts.base import ConceptKind
from repro.model.schema import Schema
from repro.ops.attribute_ops import (
    AddAttribute,
    DeleteAttribute,
    ModifyAttributeType,
)
from repro.ops.base import OperationError, SchemaOperation
from repro.ops.effects import EffectSignature
from repro.ops.operation_ops import AddOperation, DeleteOperation
from repro.ops.registry import is_admissible
from repro.ops.type_ops import AddTypeDefinition, DeleteTypeDefinition
from repro.ops.type_property_ops import (
    AddExtentName,
    AddKeyList,
    AddSupertype,
    DeleteExtentName,
    DeleteKeyList,
    DeleteSupertype,
    ModifyExtentName,
)


@dataclass(frozen=True)
class Diagnostic:
    """One statically detected failure: plan op *index* will not apply."""

    index: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"op[{self.index}] {self.code}: {self.message}"


@dataclass(frozen=True)
class ConflictEdge:
    """One ordering dependency between two plan ops (earlier < later)."""

    earlier: int
    later: int
    reason: str

    def __str__(self) -> str:
        return f"op[{self.earlier}] -> op[{self.later}]: {self.reason}"


class PlanPreflightError(OperationError):
    """A plan was rejected before execution; ``diagnostics`` says why."""

    def __init__(self, diagnostics: list[Diagnostic]) -> None:
        self.diagnostics = list(diagnostics)
        lines = "; ".join(str(d) for d in self.diagnostics[:5])
        more = len(self.diagnostics) - 5
        if more > 0:
            lines += f"; (+{more} more)"
        super().__init__(f"plan rejected by pre-flight analysis: {lines}")


@dataclass
class PlanAnalysis:
    """Everything :func:`analyze_plan` learned about one plan."""

    plan: list[SchemaOperation]
    signatures: list[EffectSignature]
    edges: list[ConflictEdge]
    diagnostics: list[Diagnostic]
    #: The rewritten plan (== ``plan`` when diagnostics exist or
    #: normalization found nothing); execution order is preserved.
    normalized: list[SchemaOperation]
    #: Human-readable notes for each normalization rewrite.
    notes: list[str] = field(default_factory=list)
    #: Consecutive runs of pairwise-commuting ops of ``normalized``;
    #: concatenated they are exactly ``normalized``.
    batches: list[list[SchemaOperation]] = field(default_factory=list)

    def is_clean(self) -> bool:
        """True when pre-flight found no guaranteed failure."""
        return not self.diagnostics

    def report(self) -> str:
        """Multi-line report for CLI / designer display."""
        lines = [
            f"plan: {len(self.plan)} operation(s), "
            f"{len(self.edges)} conflict edge(s)"
        ]
        if self.diagnostics:
            lines.append("pre-flight diagnostics:")
            lines.extend(f"  {diag}" for diag in self.diagnostics)
        else:
            lines.append("pre-flight: clean")
        for note in self.notes:
            lines.append(f"normalize: {note}")
        if len(self.normalized) != len(self.plan):
            lines.append(
                f"normalized: {len(self.plan)} -> "
                f"{len(self.normalized)} operation(s)"
            )
        if self.batches:
            sizes = ", ".join(str(len(batch)) for batch in self.batches)
            lines.append(
                f"batches: {len(self.batches)} "
                f"(validate once per batch; sizes: {sizes})"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Pre-flight diagnostics: name-binding and extent simulation
# ----------------------------------------------------------------------


def _preflight(
    plan: list[SchemaOperation],
    signatures: list[EffectSignature],
    schema: Schema | None,
    kind: ConceptKind | None,
) -> list[Diagnostic]:
    """Simulate name bindings and extents; collect guaranteed failures.

    The simulation mirrors exactly the membership and extent checks the
    operations themselves make, and ops that get a diagnostic do not
    contribute their simulated effects (dynamically they would have
    failed and changed nothing) -- together this keeps every diagnostic
    a real failure, with no false positives.  Without a *schema* the
    membership/extent families are skipped (only admissibility remains).
    """
    diagnostics: list[Diagnostic] = []
    tracking = schema is not None
    live: set[str] = set(schema.type_names()) if tracking else set()
    extent_of: dict[str, str | None] = (
        {interface.name: interface.extent for interface in schema}
        if tracking
        else {}
    )
    deleted_at: dict[str, int] = {}

    for index, (operation, signature) in enumerate(zip(plan, signatures)):
        found: list[Diagnostic] = []
        if kind is not None and not is_admissible(operation, kind):
            found.append(Diagnostic(
                index, "inadmissible",
                f"{operation.op_name} is not allowed in a {kind.label()} "
                "concept schema (Table 1)",
            ))
        if tracking:
            for name in sorted(signature.requires):
                if name in live:
                    continue
                if name in deleted_at:
                    found.append(Diagnostic(
                        index, "use-after-delete",
                        f"{operation.to_text()} needs type {name!r}, "
                        f"deleted by op[{deleted_at[name]}]",
                    ))
                else:
                    found.append(Diagnostic(
                        index, "unknown-type",
                        f"{operation.to_text()} needs type {name!r}, "
                        "which no prior op creates and the schema lacks",
                    ))
            found.extend(_check_name_equivalence(
                index, operation, signature, live, extent_of
            ))
        diagnostics.extend(found)
        if found or not tracking:
            # A failing op leaves the schema unchanged; mirroring that
            # keeps the simulation exact for the ops after it.
            continue
        for name in signature.creates:
            live.add(name)
            extent_of[name] = None
            deleted_at.pop(name, None)
        for name in signature.deletes:
            live.discard(name)
            extent_of.pop(name, None)
            deleted_at[name] = index
        _apply_extent_effect(operation, extent_of)
    return diagnostics


def _check_name_equivalence(
    index: int,
    operation: SchemaOperation,
    signature: EffectSignature,
    live: set[str],
    extent_of: dict[str, str | None],
) -> list[Diagnostic]:
    """Duplicate type names and extent-name violations (name equivalence)."""
    found: list[Diagnostic] = []
    if signature.requires - live:
        # The op already fails on a missing type; the state checks below
        # would read simulated state for an interface that is not there.
        return found
    if isinstance(operation, AddTypeDefinition):
        if operation.typename in live:
            found.append(Diagnostic(
                index, "duplicate-type",
                f"type {operation.typename!r} already exists "
                "(type names are globally unique)",
            ))
    elif isinstance(operation, AddExtentName):
        if extent_of.get(operation.typename) is not None:
            found.append(Diagnostic(
                index, "extent-state",
                f"{operation.typename!r} already has extent "
                f"{extent_of[operation.typename]!r}; use modify_extent_name",
            ))
        found.extend(_extent_clash(
            index, operation.typename, operation.extent_name, extent_of
        ))
    elif isinstance(operation, ModifyExtentName):
        if extent_of.get(operation.typename) != operation.old_extent_name:
            found.append(Diagnostic(
                index, "extent-state",
                f"{operation.typename!r} has extent "
                f"{extent_of.get(operation.typename)!r}, not "
                f"{operation.old_extent_name!r}",
            ))
        found.extend(_extent_clash(
            index, operation.typename, operation.new_extent_name, extent_of
        ))
    elif isinstance(operation, DeleteExtentName):
        if extent_of.get(operation.typename) != operation.extent_name:
            found.append(Diagnostic(
                index, "extent-state",
                f"{operation.typename!r} has extent "
                f"{extent_of.get(operation.typename)!r}, not "
                f"{operation.extent_name!r}",
            ))
    return found


def _extent_clash(
    index: int, typename: str, extent_name: str,
    extent_of: dict[str, str | None],
) -> list[Diagnostic]:
    owners = sorted(
        owner
        for owner, extent in extent_of.items()
        if extent == extent_name and owner != typename
    )
    if owners:
        return [Diagnostic(
            index, "extent-clash",
            f"extent name {extent_name!r} is already used by "
            f"{owners[0]!r} (extent names are globally unique)",
        )]
    return []


def _apply_extent_effect(
    operation: SchemaOperation, extent_of: dict[str, str | None]
) -> None:
    if isinstance(operation, AddExtentName):
        extent_of[operation.typename] = operation.extent_name
    elif isinstance(operation, ModifyExtentName):
        extent_of[operation.typename] = operation.new_extent_name
    elif isinstance(operation, DeleteExtentName):
        extent_of[operation.typename] = None


# ----------------------------------------------------------------------
# Conflict graph and batching
# ----------------------------------------------------------------------


def conflict_edges(
    signatures: list[EffectSignature],
) -> list[ConflictEdge]:
    """Def-use/conflict graph: one edge per non-commuting ordered pair."""
    edges: list[ConflictEdge] = []
    for later in range(len(signatures)):
        for earlier in range(later):
            reason = signatures[earlier].conflicts_with(signatures[later])
            if reason is not None:
                edges.append(ConflictEdge(earlier, later, reason))
    return edges


def partition_batches(
    plan: list[SchemaOperation],
    signatures: list[EffectSignature] | None = None,
) -> list[list[SchemaOperation]]:
    """Split the plan into consecutive runs of pairwise-commuting ops.

    Execution order is untouched -- batches are cut points, nothing is
    reordered -- so batching is always safe; it only decides how often
    :meth:`~repro.repository.workspace.Workspace.apply_plan` re-validates.
    """
    if signatures is None:
        signatures = [operation.effect_signature() for operation in plan]
    batches: list[list[SchemaOperation]] = []
    current: list[SchemaOperation] = []
    current_signatures: list[EffectSignature] = []
    for operation, signature in zip(plan, signatures):
        if current and any(
            previous.conflicts_with(signature) is not None
            for previous in current_signatures
        ):
            batches.append(current)
            current = []
            current_signatures = []
        current.append(operation)
        current_signatures.append(signature)
    if current:
        batches.append(current)
    return batches


# ----------------------------------------------------------------------
# Normalization: dead pairs and fusion
# ----------------------------------------------------------------------

#: (add class, delete class) pairs whose add→delete of the same
#: construct is an exact no-op.  Relationship add/delete pairs are
#: excluded on purpose: deleting an end also removes a paired inverse
#: that may predate the add.
_DEAD_PAIR_KEYS = {
    AddTypeDefinition: lambda op: ("type", op.typename),
    DeleteTypeDefinition: lambda op: ("type", op.typename),
    AddAttribute: lambda op: ("attribute", op.typename, op.attribute_name),
    DeleteAttribute: lambda op: ("attribute", op.typename, op.attribute_name),
    AddOperation: lambda op: ("operation", op.typename, op.operation_name),
    DeleteOperation: lambda op: ("operation", op.typename, op.operation_name),
    AddKeyList: lambda op: ("key", op.typename, tuple(op.key)),
    DeleteKeyList: lambda op: ("key", op.typename, tuple(op.key)),
    AddSupertype: lambda op: ("supertype", op.typename, op.supertype),
    DeleteSupertype: lambda op: ("supertype", op.typename, op.supertype),
    AddExtentName: lambda op: ("extent", op.typename),
    DeleteExtentName: lambda op: ("extent", op.typename),
}

_DEAD_PAIRS = {
    AddTypeDefinition: DeleteTypeDefinition,
    AddAttribute: DeleteAttribute,
    AddOperation: DeleteOperation,
    AddKeyList: DeleteKeyList,
    AddSupertype: DeleteSupertype,
    AddExtentName: DeleteExtentName,
}


def _dead_pair(
    first: SchemaOperation, second: SchemaOperation
) -> bool:
    """True when *second* exactly deletes what *first* added."""
    expected = _DEAD_PAIRS.get(type(first))
    if expected is None or type(second) is not expected:
        return False
    key_of = _DEAD_PAIR_KEYS[type(first)]
    if key_of(first) != _DEAD_PAIR_KEYS[type(second)](second):
        return False
    if isinstance(first, AddExtentName):
        # delete_extent_name checks the extent value, not just presence.
        return first.extent_name == second.extent_name
    return True


def _fuse(
    first: SchemaOperation, second: SchemaOperation
) -> SchemaOperation | None:
    """A single op equivalent to *first* then *second*, or ``None``.

    Fusions returning an identity rewrite (e.g. a modify chain that
    lands back on the original value) yield an op the caller can still
    detect as dead via :func:`_identity_op`.
    """
    if (
        isinstance(first, AddAttribute)
        and isinstance(second, ModifyAttributeType)
        and first.typename == second.typename
        and first.attribute_name == second.attribute_name
        and first.domain_type == second.old_type
    ):
        return AddAttribute(
            first.typename, second.new_type, first.attribute_name
        )
    if (
        isinstance(first, ModifyAttributeType)
        and isinstance(second, ModifyAttributeType)
        and first.typename == second.typename
        and first.attribute_name == second.attribute_name
        and first.new_type == second.old_type
    ):
        return ModifyAttributeType(
            first.typename, first.attribute_name,
            first.old_type, second.new_type,
        )
    if (
        isinstance(first, AddExtentName)
        and isinstance(second, ModifyExtentName)
        and first.typename == second.typename
        and first.extent_name == second.old_extent_name
    ):
        return AddExtentName(first.typename, second.new_extent_name)
    if (
        isinstance(first, ModifyExtentName)
        and isinstance(second, ModifyExtentName)
        and first.typename == second.typename
        and first.new_extent_name == second.old_extent_name
    ):
        return ModifyExtentName(
            first.typename, first.old_extent_name, second.new_extent_name
        )
    return None


def _identity_op(operation: SchemaOperation) -> bool:
    """Fusion products that change nothing and can be dropped outright."""
    if isinstance(operation, ModifyAttributeType):
        return operation.old_type == operation.new_type
    if isinstance(operation, ModifyExtentName):
        return operation.old_extent_name == operation.new_extent_name
    return False


def _commutable_to_adjacency(
    signatures: list[EffectSignature], first: int, second: int,
    group: set[int] | None = None,
) -> bool:
    """Can ops ``first``..``second`` (minus *group*) be slid apart?

    True when no op strictly between conflicts with either endpoint (or
    any *group* member): the endpoints can then be commuted next to each
    other, where the rewrite is locally justified.
    """
    members = group if group is not None else {first, second}
    for k in range(first + 1, second):
        if k in members:
            continue
        if any(
            signatures[k].conflicts_with(signatures[g]) is not None
            for g in members
        ):
            return False
    return True


def normalize_plan(
    plan: list[SchemaOperation],
    signatures: list[EffectSignature] | None = None,
) -> tuple[list[SchemaOperation], list[str]]:
    """Rewrite the plan without changing what it computes.

    Three rewrites, each applied only when the ops involved are
    commutable to adjacency under the conflict relation:

    * **type-group elimination** -- ``add_type_definition(N)`` ...
      ``delete_type_definition(N)`` plus every op between confined to
      ``N`` disappears wholesale;
    * **dead pairs** -- add→delete of the same construct (attribute,
      operation, key, supertype, extent) disappears;
    * **fusion** -- add+modify and modify+modify chains over the same
      construct collapse into one op (identity chains are dropped).

    Assumes the plan is *applicable* (pre-flight clean and dynamically
    valid); :func:`analyze_plan` only normalizes diagnostic-free plans.
    """
    operations = list(plan)
    notes: list[str] = []
    current = (
        list(signatures)
        if signatures is not None and len(signatures) == len(operations)
        else [operation.effect_signature() for operation in operations]
    )
    changed = True
    while changed:
        changed = False
        rewrite = _find_type_group(operations, current)
        if rewrite is not None:
            group, name = rewrite
            notes.append(
                f"eliminated add→delete group of type {name!r} "
                f"({len(group)} op(s))"
            )
            operations = [
                operation
                for index, operation in enumerate(operations)
                if index not in group
            ]
            current = [
                signature
                for index, signature in enumerate(current)
                if index not in group
            ]
            changed = True
            continue
        rewrite = _find_peephole(operations, current)
        if rewrite is not None:
            first, second, replacement, note = rewrite
            notes.append(note)
            kept: list[SchemaOperation] = []
            kept_signatures: list[EffectSignature] = []
            for index, operation in enumerate(operations):
                if index == second:
                    continue
                if index == first:
                    if replacement is not None:
                        kept.append(replacement)
                        kept_signatures.append(
                            replacement.effect_signature()
                        )
                    continue
                kept.append(operation)
                kept_signatures.append(current[index])
            operations = kept
            current = kept_signatures
            changed = True
    return operations, notes


def _find_type_group(
    operations: list[SchemaOperation],
    signatures: list[EffectSignature],
) -> tuple[set[int], str] | None:
    for first, operation in enumerate(operations):
        if not isinstance(operation, AddTypeDefinition):
            continue
        name = operation.typename
        for second in range(first + 1, len(operations)):
            candidate = operations[second]
            if (
                isinstance(candidate, DeleteTypeDefinition)
                and candidate.typename == name
            ):
                group = {first, second}
                for k in range(first + 1, second):
                    if signatures[k].mentioned_names() <= {name}:
                        group.add(k)
                if _commutable_to_adjacency(
                    signatures, first, second, group
                ):
                    return group, name
                break
    return None


def _peephole_keys(operation: SchemaOperation) -> list[tuple]:
    """Construct keys under which *operation* can pair with another op."""
    keys: list[tuple] = []
    key_of = _DEAD_PAIR_KEYS.get(type(operation))
    if key_of is not None:
        keys.append(key_of(operation))
    if isinstance(operation, (AddAttribute, ModifyAttributeType)):
        keys.append(
            ("attr-chain", operation.typename, operation.attribute_name)
        )
    if isinstance(operation, (AddExtentName, ModifyExtentName)):
        keys.append(("extent-chain", operation.typename))
    return keys


def _find_peephole(
    operations: list[SchemaOperation],
    signatures: list[EffectSignature],
) -> tuple[int, int, SchemaOperation | None, str] | None:
    buckets: dict[tuple, list[int]] = {}
    for index, operation in enumerate(operations):
        for key in _peephole_keys(operation):
            buckets.setdefault(key, []).append(index)
    pairs = sorted({
        (first, second)
        for indices in buckets.values()
        for position, first in enumerate(indices)
        for second in indices[position + 1:]
    })
    for first, second in pairs:
        if _dead_pair(operations[first], operations[second]):
            if _commutable_to_adjacency(signatures, first, second):
                return (
                    first, second, None,
                    f"eliminated dead pair op[{first}]+op[{second}] "
                    f"({operations[first].op_name} → "
                    f"{operations[second].op_name})",
                )
            continue
        fused = _fuse(operations[first], operations[second])
        if fused is None:
            continue
        if not _commutable_to_adjacency(signatures, first, second):
            continue
        if _identity_op(fused):
            return (
                first, second, None,
                f"dropped identity chain op[{first}]+op[{second}] "
                f"({fused.op_name} back to the original value)",
            )
        return (
            first, second, fused,
            f"fused op[{first}]+op[{second}] into {fused.to_text()}",
        )
    return None


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def analyze_plan(
    plan: list[SchemaOperation],
    schema: Schema | None = None,
    kind: ConceptKind | None = None,
    normalize: bool = True,
    edges: bool = True,
) -> PlanAnalysis:
    """Statically analyze *plan* against *schema* (never mutated).

    With *kind*, each op is additionally checked against the Table 1
    admissibility matrix for that concept-schema type.  Normalization
    and batching run only when pre-flight reports no diagnostics -- a
    failing plan is reported as-is, with indices into the original.

    ``edges=False`` skips the O(n^2) conflict-edge graph; diagnostics,
    normalization, and batches are unaffected (they use pairwise
    conflict checks directly).  :meth:`Workspace.apply_plan` uses this
    -- it consumes only diagnostics and batches.
    """
    operations = list(plan)
    signatures = [operation.effect_signature() for operation in operations]
    conflict_graph = conflict_edges(signatures) if edges else []
    diagnostics = _preflight(operations, signatures, schema, kind)
    normalized = operations
    notes: list[str] = []
    if not diagnostics and normalize:
        normalized, notes = normalize_plan(operations, signatures)
    batches: list[list[SchemaOperation]] = []
    if not diagnostics:
        batches = partition_batches(
            normalized, signatures if not notes else None
        )
    return PlanAnalysis(
        plan=operations,
        signatures=signatures,
        edges=conflict_graph,
        diagnostics=diagnostics,
        normalized=normalized,
        notes=notes,
        batches=batches,
    )


def main(argv: list[str] | None = None) -> int:
    """CLI: analyze an operation-language script against an ODL schema."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.plan",
        description=(
            "Static pre-flight analysis of a modification plan: effect "
            "signatures, conflict edges, diagnostics, normalization, "
            "and validation batches."
        ),
    )
    parser.add_argument(
        "--schema", help="ODL file with the schema the plan targets"
    )
    parser.add_argument(
        "--script",
        help="operation-language script ('-' or omitted: stdin)",
    )
    parser.add_argument(
        "--kind",
        choices=sorted(kind.value for kind in ConceptKind),
        help="concept-schema type for Table 1 admissibility checks",
    )
    parser.add_argument(
        "--edges", action="store_true",
        help="also list every conflict edge",
    )
    options = parser.parse_args(argv)

    from repro.ops.language import parse_script

    schema = None
    if options.schema:
        from repro.odl.parser import parse_schema

        with open(options.schema, encoding="utf-8") as handle:
            schema = parse_schema(handle.read(), name=options.schema)
    if options.script and options.script != "-":
        with open(options.script, encoding="utf-8") as handle:
            text = handle.read()
    else:
        text = sys.stdin.read()
    plan = parse_script(text)
    kind = ConceptKind(options.kind) if options.kind else None
    analysis = analyze_plan(plan, schema, kind=kind)
    print(analysis.report())
    if options.edges:
        for edge in analysis.edges:
            print(f"  {edge}")
    return 0 if analysis.is_clean() else 1


if __name__ == "__main__":
    raise SystemExit(main())
