"""Repository persistence (ours): save/load round-trip cost.

The paper's repository lived in ObjectStore; ours serialises to JSON
carrying the shrink wrap ODL plus the customization script and replays
on load (DESIGN.md documents the substitution).  The bench measures a
full save/load cycle for a customized university repository.
"""

from repro.catalog import FIGURE7_ELABORATION_SCRIPT, university_schema
from repro.model.fingerprint import schemas_equal
from repro.ops.language import parse_script
from repro.repository.persistence import (
    repository_from_dict,
    repository_to_dict,
)
from repro.repository.repository import SchemaRepository


def build_repository() -> SchemaRepository:
    repository = SchemaRepository(university_schema(), custom_name="persisted")
    for operation in parse_script(FIGURE7_ELABORATION_SCRIPT):
        repository.apply(operation, concept_id="ww:Course_Offering")
    repository.local_names.set_alias(
        "Course_Offering", "Class_Meeting", repository.workspace.schema
    )
    return repository


REPOSITORY = build_repository()


def round_trip():
    return repository_from_dict(repository_to_dict(REPOSITORY))


def test_bench_persistence_round_trip(benchmark, report):
    restored = benchmark(round_trip)
    assert schemas_equal(
        restored.workspace.schema, REPOSITORY.workspace.schema
    )
    assert restored.local_names.local_type_name("Course_Offering") == (
        "Class_Meeting"
    )
    payload = repository_to_dict(REPOSITORY)
    report(
        "persistence_round_trip",
        f"repository payload: {len(payload['operations'])} operations, "
        f"{len(payload['shrink_wrap_odl'])} bytes of ODL, "
        f"{len(payload['local_names'])} local name(s); load replays the "
        "script and reproduces the workspace exactly.",
    )
