"""The population model: objects, attribute values, relationship links.

A :class:`Population` is one candidate instance world for a schema: a
set of :class:`InstanceObject` records, each carrying

* a direct type (the interface the object instantiates -- through ISA
  extent containment the object is also a member of every ancestor's
  extent);
* attribute values, keyed by attribute name (a value may be missing;
  :func:`~repro.instances.check.check_population` only requires values
  that a constraint needs, e.g. key attributes);
* relationship links, keyed by traversal-path name, each an *ordered*
  tuple of target object ids (order is what order-by constrains);
  part-of and instance-of membership are links over ends of those
  relationship kinds.

Populations are plain mutable builders -- the checker treats them as
data -- and render to a compact text form so witness populations can
ride along in designer feedback and fuzzer reproducers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.model.schema import Schema

#: Attribute values are plain Python scalars, object ids (for
#: interface-typed attributes), or lists/tuples of either.
Value = object


@dataclass(frozen=True)
class PopulationIssue:
    """One way a population violates a schema constraint.

    ``kind`` is a stable constraint-family label (``cardinality``,
    ``inverse``, ``key``, ``order-by``, ``isa-extent``, ``part-of``,
    ``instance-of``, plus the structural families ``object-type``,
    ``attribute``, and ``link``); ``location`` names the object (or
    ``object.path``) at fault.
    """

    kind: str
    location: str
    message: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.location}: {self.message}"


@dataclass
class InstanceObject:
    """One object of a population."""

    oid: str
    type_name: str
    attributes: dict[str, Value] = field(default_factory=dict)
    links: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def describe(self) -> str:
        parts = [f"{self.oid}: {self.type_name}"]
        attrs = ", ".join(
            f"{name}={value!r}" for name, value in self.attributes.items()
        )
        parts.append("{" + attrs + "}")
        for path, targets in self.links.items():
            parts.append(f"{path}=[{', '.join(targets)}]")
        return " ".join(parts)

    def copy(self) -> "InstanceObject":
        return InstanceObject(
            self.oid,
            self.type_name,
            dict(self.attributes),
            dict(self.links),
        )


class Population:
    """A finite set of instance objects, by id, in insertion order."""

    def __init__(self, name: str = "population") -> None:
        self.name = name
        self.objects: dict[str, InstanceObject] = {}

    def __iter__(self) -> Iterator[InstanceObject]:
        return iter(self.objects.values())

    def __len__(self) -> int:
        return len(self.objects)

    def __contains__(self, oid: str) -> bool:
        return oid in self.objects

    def get(self, oid: str) -> InstanceObject:
        return self.objects[oid]

    def add(
        self, oid: str, type_name: str, **attributes: Value
    ) -> InstanceObject:
        """Add one object; returns it for further wiring."""
        if oid in self.objects:
            raise ValueError(f"duplicate object id {oid!r}")
        obj = InstanceObject(oid, type_name, dict(attributes))
        self.objects[oid] = obj
        return obj

    def link(self, owner_oid: str, path: str, *target_oids: str) -> None:
        """Append targets to ``owner.path`` (one direction, no mirror)."""
        owner = self.objects[owner_oid]
        owner.links[path] = owner.links.get(path, ()) + tuple(target_oids)

    def wire(
        self,
        schema: "Schema",
        owner_oid: str,
        path: str,
        target_oid: str,
        mirror: bool = True,
    ) -> None:
        """Link ``owner.path -> target`` and mirror the declared inverse.

        The inverse traversal path is looked up on the *defining* owner
        of *path* (walking the owner's ancestry, since relationships are
        inherited).  With no well-formed inverse in the schema -- or
        ``mirror=False`` for deliberately broken near-misses -- only the
        forward link is recorded.
        """
        from repro.instances.check import available_relationships

        self.link(owner_oid, path, target_oid)
        if not mirror:
            return
        owner = self.objects[owner_oid]
        ends = available_relationships(schema, owner.type_name)
        found = ends.get(path)
        if found is None:
            return
        defining_owner, end = found
        if schema.find_inverse(defining_owner, end) is None:
            return
        self.link(target_oid, end.inverse_name, owner_oid)

    def copy(self, name: str | None = None) -> "Population":
        duplicate = Population(name or self.name)
        duplicate.objects = {
            oid: obj.copy() for oid, obj in self.objects.items()
        }
        return duplicate

    def render(self) -> str:
        """Compact one-object-per-line rendering for feedback/reports."""
        if not self.objects:
            return f"{self.name}: (empty)"
        lines = [f"{self.name}:"]
        lines.extend(f"  {obj.describe()}" for obj in self)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Population {self.name!r} with {len(self)} object(s)>"
