"""Operations (methods) of interface definitions.

The extended ODL keeps ODMG's operation signatures: a return type, a list
of directed parameters (``in`` / ``out`` / ``inout``), and a list of
exceptions raised.  The modification language can add and delete whole
operations, move them within the generalization hierarchy, and modify
their return type, argument list, and exception list (Tables 1-3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.model.errors import InvalidModelError
from repro.model.types import TypeRef, is_type_ref

#: Parameter passing modes permitted by ODL.
PARAMETER_DIRECTIONS = ("in", "out", "inout")


@dataclass(frozen=True, slots=True)
class Parameter:
    """One formal parameter of an operation."""

    direction: str
    type: TypeRef
    name: str

    def __post_init__(self) -> None:
        if self.direction not in PARAMETER_DIRECTIONS:
            raise InvalidModelError(
                f"invalid parameter direction {self.direction!r}"
            )
        if not is_type_ref(self.type):
            raise InvalidModelError(
                f"parameter {self.name!r} has a non-type domain: {self.type!r}"
            )
        if not self.name or not (self.name[0].isalpha() or self.name[0] == "_"):
            raise InvalidModelError(f"invalid parameter name {self.name!r}")

    def __str__(self) -> str:
        return f"{self.direction} {self.type} {self.name}"


@dataclass(frozen=True, slots=True)
class Operation:
    """A named operation with a full ODL signature."""

    name: str
    return_type: TypeRef
    parameters: tuple[Parameter, ...] = field(default_factory=tuple)
    exceptions: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name or not (self.name[0].isalpha() or self.name[0] == "_"):
            raise InvalidModelError(f"invalid operation name {self.name!r}")
        if not is_type_ref(self.return_type):
            raise InvalidModelError(
                f"operation {self.name!r} has a non-type return: "
                f"{self.return_type!r}"
            )
        if not isinstance(self.parameters, tuple):
            object.__setattr__(self, "parameters", tuple(self.parameters))
        if not isinstance(self.exceptions, tuple):
            object.__setattr__(self, "exceptions", tuple(self.exceptions))
        seen: set[str] = set()
        for parameter in self.parameters:
            if parameter.name in seen:
                raise InvalidModelError(
                    f"operation {self.name!r} has duplicate parameter "
                    f"{parameter.name!r}"
                )
            seen.add(parameter.name)
        if len(set(self.exceptions)) != len(self.exceptions):
            raise InvalidModelError(
                f"operation {self.name!r} lists a duplicate exception"
            )

    def with_return_type(self, new_type: TypeRef) -> "Operation":
        """Return a copy with a different return type."""
        return replace(self, return_type=new_type)

    def with_parameters(self, parameters: tuple[Parameter, ...]) -> "Operation":
        """Return a copy with a different argument list."""
        return replace(self, parameters=tuple(parameters))

    def with_exceptions(self, exceptions: tuple[str, ...]) -> "Operation":
        """Return a copy with a different exceptions-raised list."""
        return replace(self, exceptions=tuple(exceptions))

    def signature(self) -> str:
        """Render the ODL signature (without the trailing semicolon)."""
        params = ", ".join(str(parameter) for parameter in self.parameters)
        text = f"{self.return_type} {self.name}({params})"
        if self.exceptions:
            text += f" raises ({', '.join(self.exceptions)})"
        return text

    def __str__(self) -> str:
        return self.signature()
