"""Tests for the ``tools/check_effects.py`` lint gate.

The checker traces the spine mutators reachable from each operation
class's ``apply`` and asserts ``touched_aspects`` covers them.  These
tests pin both directions: every registered class passes, and a
deliberately under-declared class is caught.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

from repro.model.mutation import Aspect
from repro.ops.attribute_ops import AddAttribute
from repro.ops.registry import OPERATION_CLASSES

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECKER = REPO_ROOT / "tools" / "check_effects.py"


def _load_checker():
    spec = importlib.util.spec_from_file_location("check_effects", CHECKER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_every_registered_class_declares_its_mutators():
    checker = _load_checker()
    failures = {
        klass.__name__: missing
        for klass in OPERATION_CLASSES
        if (missing := checker.check_operation_class(klass))
    }
    assert failures == {}


def test_checker_reaches_mutators_for_each_class():
    """The tracer must actually find mutators (not silently see none)."""
    checker = _load_checker()
    traced = sum(
        1 for klass in OPERATION_CLASSES
        if checker.reachable_mutators(klass)
    )
    # Every Appendix A op mutates the schema somehow; if the tracer
    # found mutators for only a handful, it is broken, not the ops.
    assert traced == len(OPERATION_CLASSES)


class _UnderDeclared(AddAttribute):
    """Same apply as AddAttribute, but claims it touches nothing."""

    touched_aspects = frozenset()


def test_under_declared_class_is_caught():
    checker = _load_checker()
    missing = checker.check_operation_class(_UnderDeclared)
    assert missing
    assert any(
        "add_attribute" in message and str(Aspect.ATTRS.value) in message
        for message in missing
    )


def test_cli_passes_on_current_tree():
    result = subprocess.run(
        [sys.executable, str(CHECKER)],
        capture_output=True, text=True, cwd=REPO_ROOT,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "operation classes declare every aspect" in result.stdout
